"""Compiled traces: addresses pre-mapped to (channel, bank, row) arrays.

The simulator's issue path used to call ``MopAddressMapper.map_address``
once per request *per run* — but the mapping depends only on the trace
and the mapper geometry, not on the defense configuration, so a sweep of
N defense configs repeated the identical work N times.  Compiling a
trace once per ``(trace, mapper)`` pair turns the issue path into plain
list indexing and lets every config in a sweep share the result.

Layers:

* :func:`compile_trace` / :func:`compile_traces` — pure compilation of
  one trace (or one per-core set) against a mapper.
* :func:`compiled_rate_mode_traces` — a bounded, process-local cache in
  front of trace *generation + compilation*, keyed by the full recipe
  ``(workload, n_cores, n_requests, seed, mapper geometry)``.  Trace
  generation is seeded and deterministic, so cache hits are bit-identical
  to regeneration.
* :func:`compiled_source_traces` — the same cache for heterogeneous
  per-core source tuples (:mod:`repro.workloads.sources`): benign
  profile copies, attacker generators and idle cores in any mix.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Sequence, Tuple

from ..cache import CacheStats
from ..dram.address import LINE_SHIFT, MopAddressMapper
from .trace import Trace

#: Bound on the process-local compiled-trace cache (entries, one per
#: distinct (workload, cores, requests, seed, mapper) recipe).  Evicts
#: least-recently-used; a full 20-workload sweep fits comfortably.
CACHE_MAX_ENTRIES = 128

MapperKey = Tuple[int, int, int]


def mapper_key(mapper: MopAddressMapper) -> MapperKey:
    """The geometry that determines the address mapping."""
    return (
        mapper.channels,
        mapper.banks_per_channel,
        mapper.lines_per_row_group,
    )


class CompiledTrace:
    """One trace's requests pre-mapped against one mapper geometry.

    Parallel lists, indexed by request position: ``channels[i]``,
    ``banks[i]``, ``rows[i]``, ``columns[i]`` are the decomposed address
    of request ``i``; ``flat_banks[i]`` is the simulator's flattened
    ``channel * banks_per_channel + bank`` id; ``is_write[i]`` and
    ``gaps[i]`` carry the request's direction and think time.  The source
    :class:`Trace` stays reachable via ``trace``.
    """

    __slots__ = (
        "trace",
        "key",
        "length",
        "channels",
        "banks",
        "rows",
        "columns",
        "flat_banks",
        "is_write",
        "gaps",
    )

    def __init__(self, trace: Trace, mapper: MopAddressMapper) -> None:
        requests = trace.requests
        lines_per_group = mapper.lines_per_row_group
        total_banks = mapper.total_banks
        n_channels = mapper.channels
        banks_per_channel = mapper.banks_per_channel
        lines = [request.address >> LINE_SHIFT for request in requests]
        groups = [line // lines_per_group for line in lines]
        flat = [group % total_banks for group in groups]
        self.trace = trace
        self.key = mapper_key(mapper)
        self.length = len(requests)
        self.columns = [line % lines_per_group for line in lines]
        self.rows = [group // total_banks for group in groups]
        self.channels = [f % n_channels for f in flat]
        self.banks = [f // n_channels for f in flat]
        self.flat_banks = [
            channel * banks_per_channel + bank
            for channel, bank in zip(self.channels, self.banks)
        ]
        self.is_write = [request.is_write for request in requests]
        self.gaps = [request.gap_cycles for request in requests]

    def __len__(self) -> int:
        return self.length


def compile_trace(trace: Trace, mapper: MopAddressMapper) -> CompiledTrace:
    """Pre-map every request of ``trace`` against ``mapper``."""
    return CompiledTrace(trace, mapper)


def compile_traces(
    traces: Sequence[Trace], mapper: MopAddressMapper
) -> List[CompiledTrace]:
    """Compile one per-core trace set against a single mapper."""
    return [CompiledTrace(trace, mapper) for trace in traces]


_cache: "OrderedDict[tuple, List[CompiledTrace]]" = OrderedDict()
_stats = CacheStats()


def compiled_rate_mode_traces(
    name: str,
    n_cores: int,
    n_requests_per_core: int,
    seed: int,
    mapper: MopAddressMapper,
) -> List[CompiledTrace]:
    """Generate + compile a rate-mode trace set, with process-local reuse.

    The cache key is the complete generation recipe plus the mapper
    geometry, so a hit is exactly the set a fresh
    :func:`repro.workloads.synthetic.rate_mode_traces` call followed by
    :func:`compile_traces` would produce.  Entries are evicted LRU once
    :data:`CACHE_MAX_ENTRIES` distinct recipes have been seen.
    """
    from .synthetic import rate_mode_traces

    key = (name, n_cores, n_requests_per_core, seed, mapper_key(mapper))
    cached = _cache.get(key)
    if cached is not None:
        _cache.move_to_end(key)
        _stats.hits += 1
        _stats.size = len(_cache)
        return cached
    _stats.misses += 1
    traces = rate_mode_traces(name, n_cores, n_requests_per_core, seed)
    compiled = compile_traces(traces, mapper)
    _cache[key] = compiled
    while len(_cache) > CACHE_MAX_ENTRIES:
        _cache.popitem(last=False)
    _stats.size = len(_cache)
    return compiled


def compiled_source_traces(
    sources,
    n_requests_per_core: int,
    seed: int,
    mapper: MopAddressMapper,
) -> List[CompiledTrace]:
    """Generate + compile a heterogeneous per-core source set, cached.

    The scenario-layer sibling of :func:`compiled_rate_mode_traces`:
    ``sources`` is a tuple of frozen
    :mod:`repro.workloads.sources` objects (one per core), which is
    hashable and fully determines trace generation, so it keys the same
    process-local LRU cache.  A hit is bit-identical to regeneration.
    """
    from .sources import build_core_traces

    key = ("sources", sources, n_requests_per_core, seed,
           mapper_key(mapper))
    cached = _cache.get(key)
    if cached is not None:
        _cache.move_to_end(key)
        _stats.hits += 1
        _stats.size = len(_cache)
        return cached
    _stats.misses += 1
    traces = build_core_traces(sources, n_requests_per_core, seed, mapper)
    compiled = compile_traces(traces, mapper)
    _cache[key] = compiled
    while len(_cache) > CACHE_MAX_ENTRIES:
        _cache.popitem(last=False)
    _stats.size = len(_cache)
    return compiled


def compiled_point_traces(
    workload,
    n_cores: int,
    n_requests_per_core: int,
    seed: int,
    mapper: MopAddressMapper,
) -> List[CompiledTrace]:
    """Dispatch a sweep-point workload key to the matching cache.

    ``workload`` is either a rate-mode name (string) or a heterogeneous
    per-core source tuple — the two forms a sweep-point triple may
    carry.  Every engine tier (reference, fast, batch) resolves its
    traces through this one entry point, so a defense sweep shares a
    single compiled set per workload no matter which tier runs it.
    Callers validate source tuples against their topology first
    (``SystemConfig.validate_sources``); this function only compiles.
    """
    if isinstance(workload, str):
        return compiled_rate_mode_traces(
            workload, n_cores, n_requests_per_core, seed, mapper
        )
    return compiled_source_traces(
        tuple(workload), n_requests_per_core, seed, mapper
    )


def compiled_cache_stats() -> CacheStats:
    """Current hit/miss/size counters of the compiled-trace cache."""
    return CacheStats(
        hits=_stats.hits, misses=_stats.misses, size=len(_cache)
    )


def clear_compiled_cache() -> None:
    """Drop all cached trace sets and reset the counters (tests/bench)."""
    _cache.clear()
    _stats.hits = 0
    _stats.misses = 0
    _stats.size = 0
