"""Attack-pattern generators: Rowhammer, Row-Press, and hybrids.

Two layers:

* **Timed accesses** (:class:`TimedAccess`) drive the security verifier
  and the mitigation schemes directly with exact ACT/close cycles —
  including the Fig-10 decoy pattern that exploits ImPress-N's window
  granularity and the parameterized K-pattern of Fig 17.
* **Traces** feed the performance simulator: classic double-sided
  hammering as a stream of row-conflicting reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dram.address import MopAddressMapper, MappedAddress, LINE_BYTES
from ..dram.timing import CycleTimings
from .trace import Trace, TraceRequest


@dataclass(frozen=True)
class TimedAccess:
    """One access: a row opened at ``act_cycle`` and closed at ``close_cycle``.

    ``close_cycle`` is when the precharge is issued; the access's total
    time (for EACT) additionally includes tPRE.
    """

    row: int
    act_cycle: int
    close_cycle: int

    def __post_init__(self) -> None:
        if self.close_cycle <= self.act_cycle:
            raise ValueError("close must come after act")

    def open_cycles(self) -> int:
        return self.close_cycle - self.act_cycle


def rowhammer_accesses(
    row: int, rounds: int, timings: CycleTimings, start_cycle: int = 0
) -> List[TimedAccess]:
    """Back-to-back activations: one ACT per tRC, each open for tRAS."""
    return [
        TimedAccess(
            row=row,
            act_cycle=start_cycle + i * timings.tRC,
            close_cycle=start_cycle + i * timings.tRC + timings.tRAS,
        )
        for i in range(rounds)
    ]


def row_press_accesses(
    row: int,
    rounds: int,
    ton_cycles: int,
    timings: CycleTimings,
    start_cycle: int = 0,
) -> List[TimedAccess]:
    """The Fig-2 pattern: each round keeps the row open for ``ton_cycles``."""
    if ton_cycles < timings.tRAS:
        raise ValueError("tON cannot be below tRAS")
    period = ton_cycles + timings.tPRE
    return [
        TimedAccess(
            row=row,
            act_cycle=start_cycle + i * period,
            close_cycle=start_cycle + i * period + ton_cycles,
        )
        for i in range(rounds)
    ]


def k_pattern_accesses(
    row: int,
    rounds: int,
    k: int,
    timings: CycleTimings,
    start_cycle: int = 0,
) -> List[TimedAccess]:
    """Fig 17: ACT, keep open tRAS + K*tRC, precharge; loop time (K+1)*tRC."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return row_press_accesses(
        row, rounds, timings.tRAS + k * timings.tRC, timings, start_cycle
    )


def decoy_pattern_accesses(
    target_row: int,
    decoy_row: int,
    rounds: int,
    timings: CycleTimings,
    lead_cycles: int | None = None,
) -> List[TimedAccess]:
    """Fig 10: evade ImPress-N's window credits entirely.

    Each round activates the target within the last tACT of a tRC window
    (so the boundary sample sees the row as not-yet-open), keeps it open
    for tRC + tRAS (so it is open at exactly one boundary), then a decoy
    activation forces the close just before the next boundary.  The
    target leaks (1 + alpha) units per round but is recorded as a single
    ACT — the worst case behind Eq 5.
    """
    trc = timings.tRC
    if lead_cycles is None:
        lead_cycles = timings.tACT // 2
    if not 0 < lead_cycles <= timings.tACT:
        raise ValueError("lead must be within the activation latency")
    accesses: List[TimedAccess] = []
    # Period must be a multiple of tRC to keep the window phase locked.
    period = 3 * trc
    for i in range(rounds):
        act = (i * period) + trc - lead_cycles
        close = act + trc + timings.tRAS
        accesses.append(
            TimedAccess(row=target_row, act_cycle=act, close_cycle=close)
        )
        # The decoy row opens as the target closes and stays open only
        # briefly; it is also invisible at the following boundary.
        decoy_act = close
        accesses.append(
            TimedAccess(
                row=decoy_row,
                act_cycle=decoy_act,
                close_cycle=decoy_act + timings.tRAS,
            )
        )
    return accesses


# ----------------------------------------------------------------------
# Trace-level attacks for the performance simulator
# ----------------------------------------------------------------------

def hammer_trace(
    mapper: MopAddressMapper,
    bank: int,
    rows: List[int],
    n_requests: int,
    channel: int = 0,
    gap_cycles: int = 0,
) -> Trace:
    """Alternating same-bank rows: every access is a row conflict (ACT)."""
    if not rows:
        raise ValueError("need at least one aggressor row")
    requests = []
    for i in range(n_requests):
        row = rows[i % len(rows)]
        address = mapper.address_of(
            MappedAddress(channel=channel, bank=bank, row=row, column=0)
        )
        requests.append(
            TraceRequest(address=address, is_write=False, gap_cycles=gap_cycles)
        )
    return Trace(requests)


def row_press_trace(
    mapper: MopAddressMapper,
    bank: int,
    row: int,
    n_requests: int,
    hold_gap_cycles: int,
    channel: int = 0,
) -> Trace:
    """Repeated reads to one row, spaced to keep it open (Row-Press-ish).

    With an open-page policy the row stays open between the spaced hits;
    a large ``hold_gap_cycles`` stretches tON toward the refresh limit.
    """
    requests = []
    for i in range(n_requests):
        address = mapper.address_of(
            MappedAddress(
                channel=channel, bank=bank, row=row,
                column=i % mapper.lines_per_row_group,
            )
        )
        requests.append(
            TraceRequest(
                address=address, is_write=False, gap_cycles=hold_gap_cycles
            )
        )
    return Trace(requests)
