"""Attack-pattern generators: Rowhammer, Row-Press, and hybrids.

Two layers:

* **Timed accesses** (:class:`TimedAccess`) drive the security verifier
  and the mitigation schemes directly with exact ACT/close cycles —
  including the Fig-10 decoy pattern that exploits ImPress-N's window
  granularity and the parameterized K-pattern of Fig 17.
* **Traces** feed the performance simulator: classic double-sided
  hammering as a stream of row-conflicting reads, plus the scenario
  subsystem's co-located attacker generators (K-sided hammering,
  Row-Press dwell, decoy closure, refresh-synchronized bursts).  All
  trace generators return ordinary :class:`~repro.workloads.trace.Trace`
  objects, so they compile through
  :class:`~repro.workloads.compiled.CompiledTrace` exactly like the
  benign synthetic workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dram.address import MopAddressMapper, MappedAddress, LINE_BYTES
from ..dram.timing import CycleTimings
from .trace import Trace, TraceRequest


@dataclass(frozen=True)
class TimedAccess:
    """One access: a row opened at ``act_cycle`` and closed at ``close_cycle``.

    ``close_cycle`` is when the precharge is issued; the access's total
    time (for EACT) additionally includes tPRE.
    """

    row: int
    act_cycle: int
    close_cycle: int

    def __post_init__(self) -> None:
        if self.close_cycle <= self.act_cycle:
            raise ValueError("close must come after act")

    def open_cycles(self) -> int:
        return self.close_cycle - self.act_cycle


def rowhammer_accesses(
    row: int, rounds: int, timings: CycleTimings, start_cycle: int = 0
) -> List[TimedAccess]:
    """Back-to-back activations: one ACT per tRC, each open for tRAS."""
    return [
        TimedAccess(
            row=row,
            act_cycle=start_cycle + i * timings.tRC,
            close_cycle=start_cycle + i * timings.tRC + timings.tRAS,
        )
        for i in range(rounds)
    ]


def row_press_accesses(
    row: int,
    rounds: int,
    ton_cycles: int,
    timings: CycleTimings,
    start_cycle: int = 0,
) -> List[TimedAccess]:
    """The Fig-2 pattern: each round keeps the row open for ``ton_cycles``."""
    if ton_cycles < timings.tRAS:
        raise ValueError("tON cannot be below tRAS")
    period = ton_cycles + timings.tPRE
    return [
        TimedAccess(
            row=row,
            act_cycle=start_cycle + i * period,
            close_cycle=start_cycle + i * period + ton_cycles,
        )
        for i in range(rounds)
    ]


def k_pattern_accesses(
    row: int,
    rounds: int,
    k: int,
    timings: CycleTimings,
    start_cycle: int = 0,
) -> List[TimedAccess]:
    """Fig 17: ACT, keep open tRAS + K*tRC, precharge; loop time (K+1)*tRC."""
    if k < 0:
        raise ValueError("k must be non-negative")
    return row_press_accesses(
        row, rounds, timings.tRAS + k * timings.tRC, timings, start_cycle
    )


def decoy_pattern_accesses(
    target_row: int,
    decoy_row: int,
    rounds: int,
    timings: CycleTimings,
    lead_cycles: int | None = None,
) -> List[TimedAccess]:
    """Fig 10: evade ImPress-N's window credits entirely.

    Each round activates the target within the last tACT of a tRC window
    (so the boundary sample sees the row as not-yet-open), keeps it open
    for tRC + tRAS (so it is open at exactly one boundary), then a decoy
    activation forces the close just before the next boundary.  The
    target leaks (1 + alpha) units per round but is recorded as a single
    ACT — the worst case behind Eq 5.
    """
    trc = timings.tRC
    if lead_cycles is None:
        lead_cycles = timings.tACT // 2
    if not 0 < lead_cycles <= timings.tACT:
        raise ValueError("lead must be within the activation latency")
    accesses: List[TimedAccess] = []
    # Period must be a multiple of tRC to keep the window phase locked.
    period = 3 * trc
    for i in range(rounds):
        act = (i * period) + trc - lead_cycles
        close = act + trc + timings.tRAS
        accesses.append(
            TimedAccess(row=target_row, act_cycle=act, close_cycle=close)
        )
        # The decoy row opens as the target closes and stays open only
        # briefly; it is also invisible at the following boundary.
        decoy_act = close
        accesses.append(
            TimedAccess(
                row=decoy_row,
                act_cycle=decoy_act,
                close_cycle=decoy_act + timings.tRAS,
            )
        )
    return accesses


# ----------------------------------------------------------------------
# Trace-level attacks for the performance simulator
# ----------------------------------------------------------------------

def hammer_trace(
    mapper: MopAddressMapper,
    bank: int,
    rows: List[int],
    n_requests: int,
    channel: int = 0,
    gap_cycles: int = 0,
) -> Trace:
    """Alternating same-bank rows: every access is a row conflict (ACT)."""
    if not rows:
        raise ValueError("need at least one aggressor row")
    requests = []
    for i in range(n_requests):
        row = rows[i % len(rows)]
        address = mapper.address_of(
            MappedAddress(channel=channel, bank=bank, row=row, column=0)
        )
        requests.append(
            TraceRequest(address=address, is_write=False, gap_cycles=gap_cycles)
        )
    return Trace(requests)


def row_press_trace(
    mapper: MopAddressMapper,
    bank: int,
    row: int,
    n_requests: int,
    hold_gap_cycles: int,
    channel: int = 0,
) -> Trace:
    """Repeated reads to one row, spaced to keep it open (Row-Press-ish).

    With an open-page policy the row stays open between the spaced hits;
    a large ``hold_gap_cycles`` stretches tON toward the refresh limit.
    """
    requests = []
    for i in range(n_requests):
        address = mapper.address_of(
            MappedAddress(
                channel=channel, bank=bank, row=row,
                column=i % mapper.lines_per_row_group,
            )
        )
        requests.append(
            TraceRequest(
                address=address, is_write=False, gap_cycles=hold_gap_cycles
            )
        )
    return Trace(requests)


def k_sided_rows(victim_row: int, k: int) -> List[int]:
    """The K aggressor rows flanking ``victim_row`` (K-sided pattern).

    Rows alternate around the victim at distance 1, 1, 3, 3, 5, ... so
    K = 1 is single-sided, K = 2 the classic double-sided pair, and
    larger K the many-sided patterns of Fig 17.  Rows below 0 are folded
    to the other side, so small victim rows stay valid.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    rows: List[int] = []
    distance = 1
    while len(rows) < k:
        below = victim_row - distance
        rows.append(below if below >= 0 else victim_row + distance + 1)
        if len(rows) < k:
            rows.append(victim_row + distance)
        distance += 2
    return rows


def k_sided_hammer_trace(
    mapper: MopAddressMapper,
    bank: int,
    victim_row: int,
    k: int,
    n_requests: int,
    channel: int = 0,
    gap_cycles: int = 0,
) -> Trace:
    """K-sided hammering around one victim: round-robin over the K
    flanking aggressor rows, every access a row conflict (ACT)."""
    return hammer_trace(
        mapper, bank, k_sided_rows(victim_row, k), n_requests,
        channel=channel, gap_cycles=gap_cycles,
    )


def row_press_dwell_trace(
    mapper: MopAddressMapper,
    bank: int,
    rows: List[int],
    n_requests: int,
    hold_gap_cycles: int,
    hits_per_dwell: int,
    channel: int = 0,
) -> Trace:
    """Row-Press dwell attack: hold each aggressor open, then switch.

    Each dwell window opens the next row in ``rows`` (a row conflict
    forces the previous one closed, charging its full tON to EACT), then
    issues ``hits_per_dwell - 1`` further column hits spaced by
    ``hold_gap_cycles`` so an open-page controller keeps the row open
    for roughly ``hits_per_dwell * hold_gap_cycles`` cycles.  Sweeping
    ``hold_gap_cycles`` / ``hits_per_dwell`` sweeps the dwell time the
    way Fig 2's tON axis does — from hammer-like (short dwell, many
    ACTs) to Row-Press-like (long dwell, few ACTs, large EACT).

    ``hold_gap_cycles`` must stay below the controller's idle-close
    timer or the dwell is cut short by the idle precharge.
    """
    if not rows:
        raise ValueError("need at least one aggressor row")
    if hits_per_dwell < 1:
        raise ValueError("hits_per_dwell must be at least 1")
    lines = mapper.lines_per_row_group
    requests = []
    dwell = 0
    while len(requests) < n_requests:
        row = rows[dwell % len(rows)]
        for hit in range(hits_per_dwell):
            if len(requests) >= n_requests:
                break
            requests.append(
                TraceRequest(
                    address=mapper.address_of(
                        MappedAddress(
                            channel=channel, bank=bank, row=row,
                            column=hit % lines,
                        )
                    ),
                    is_write=False,
                    gap_cycles=0 if hit == 0 else hold_gap_cycles,
                )
            )
        dwell += 1
    return Trace(requests)


def decoy_trace(
    mapper: MopAddressMapper,
    bank: int,
    target_row: int,
    decoy_row: int,
    n_requests: int,
    hold_gap_cycles: int,
    hold_hits: int = 2,
    channel: int = 0,
) -> Trace:
    """Trace analog of the Fig-10 decoy pattern for the system simulator.

    Each round opens the target, keeps it open with ``hold_hits`` spaced
    column hits (accumulating Row-Press dwell), then touches the decoy
    row — the row conflict forces the target closed at a time chosen by
    the attacker rather than by the controller's own timers.  The decoy
    access itself is a brief single-ACT visit, mirroring how the timed
    Fig-10 pattern hides the closure from window-boundary sampling.
    """
    if hold_hits < 1:
        raise ValueError("hold_hits must be at least 1")
    lines = mapper.lines_per_row_group
    requests = []
    while len(requests) < n_requests:
        for hit in range(hold_hits + 1):
            if len(requests) >= n_requests:
                break
            requests.append(
                TraceRequest(
                    address=mapper.address_of(
                        MappedAddress(
                            channel=channel, bank=bank, row=target_row,
                            column=hit % lines,
                        )
                    ),
                    is_write=False,
                    gap_cycles=0 if hit == 0 else hold_gap_cycles,
                )
            )
        if len(requests) < n_requests:
            requests.append(
                TraceRequest(
                    address=mapper.address_of(
                        MappedAddress(
                            channel=channel, bank=bank, row=decoy_row,
                            column=0,
                        )
                    ),
                    is_write=False,
                    gap_cycles=0,
                )
            )
    return Trace(requests)


def refresh_sync_hammer_trace(
    mapper: MopAddressMapper,
    bank: int,
    rows: List[int],
    n_requests: int,
    burst_acts: int,
    idle_gap_cycles: int,
    channel: int = 0,
) -> Trace:
    """Refresh-synchronized hammering: bursts separated by long idles.

    The attacker hammers ``burst_acts`` back-to-back conflicting
    accesses, then sleeps ``idle_gap_cycles`` before the next burst —
    with the idle gap chosen near tREFI the bursts ride the refresh
    cadence, concentrating activations into the window a probabilistic
    or windowed defense samples worst.
    """
    if not rows:
        raise ValueError("need at least one aggressor row")
    if burst_acts < 1:
        raise ValueError("burst_acts must be at least 1")
    if idle_gap_cycles < 0:
        raise ValueError("idle_gap_cycles must be non-negative")
    requests = []
    for i in range(n_requests):
        in_burst = i % burst_acts
        gap = idle_gap_cycles if i > 0 and in_burst == 0 else 0
        row = rows[i % len(rows)]
        requests.append(
            TraceRequest(
                address=mapper.address_of(
                    MappedAddress(channel=channel, bank=bank, row=row,
                                  column=0)
                ),
                is_write=False,
                gap_cycles=gap,
            )
        )
    return Trace(requests)
