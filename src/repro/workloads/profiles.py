"""Named workload profiles matching the paper's evaluation (Fig 3).

The paper runs 10 SPEC2017 rate-mode traces and 10 streaming workloads
(4 STREAM kernels plus 6 pairwise mixes).  We cannot ship SPEC traces,
so each name carries a locality/intensity profile that drives the
synthetic generator (DESIGN.md substitution #3):

* ``run_lines`` — mean number of consecutive cache lines touched before
  jumping to a new random location.  Under the MOP mapping 8 consecutive
  lines share a row, so long runs mean high row-buffer locality.
* ``gap_cycles`` — mean DRAM-clock cycles of core think time between
  LLC misses (lower = more memory-bound).
* ``write_fraction`` — stores among misses (SPEC profiles only; STREAM
  kernels derive writes from their destination streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters of one named workload."""

    name: str
    category: str                    # "spec" or "stream"
    run_lines: float = 1.0
    gap_cycles: int = 30
    write_fraction: float = 0.25
    streams: Tuple[str, ...] = ()    # STREAM kernels: r=read, w=write

    def __post_init__(self) -> None:
        if self.category not in ("spec", "stream"):
            raise ValueError("category must be 'spec' or 'stream'")
        if self.run_lines < 1.0:
            raise ValueError("run_lines must be at least 1")
        if not 0 <= self.write_fraction <= 1:
            raise ValueError("write_fraction must be a probability")


#: SPEC2017 profiles: low-to-medium spatial locality, varying intensity.
SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        WorkloadProfile("fotonik3d", "spec", run_lines=4.0, gap_cycles=18),
        WorkloadProfile("mcf", "spec", run_lines=1.3, gap_cycles=12,
                        write_fraction=0.3),
        WorkloadProfile("gcc", "spec", run_lines=2.0, gap_cycles=40),
        WorkloadProfile("omnetpp", "spec", run_lines=1.5, gap_cycles=25),
        WorkloadProfile("bwaves", "spec", run_lines=5.0, gap_cycles=16),
        WorkloadProfile("roms", "spec", run_lines=4.5, gap_cycles=20),
        WorkloadProfile("cactuBSSN", "spec", run_lines=3.5, gap_cycles=22),
        WorkloadProfile("wrf", "spec", run_lines=3.0, gap_cycles=30),
        WorkloadProfile("pop2", "spec", run_lines=2.5, gap_cycles=35),
        WorkloadProfile("xalancbmk", "spec", run_lines=1.4, gap_cycles=45),
    )
}

#: STREAM kernels: fully sequential streams, memory-bound.
#: copy:  c[i] = a[i]                (1 read stream, 1 write stream)
#: scale: b[i] = s * c[i]            (1 read, 1 write)
#: add:   c[i] = a[i] + b[i]         (2 reads, 1 write)
#: triad: a[i] = b[i] + s * c[i]     (2 reads, 1 write)
STREAM_KERNELS: Dict[str, Tuple[str, ...]] = {
    "copy": ("r", "w"),
    "scale": ("r", "w"),
    "add": ("r", "r", "w"),
    "triad": ("r", "r", "w"),
}

STREAM_PROFILES: Dict[str, WorkloadProfile] = {
    name: WorkloadProfile(
        name, "stream", run_lines=8.0, gap_cycles=20, streams=streams
    )
    for name, streams in STREAM_KERNELS.items()
}

#: The six pairwise mixes (4 cores run each side in the 8-core system).
STREAM_MIXES: Tuple[Tuple[str, str], ...] = (
    ("add", "copy"),
    ("add", "scale"),
    ("add", "triad"),
    ("copy", "scale"),
    ("copy", "triad"),
    ("scale", "triad"),
)


def mix_name(first: str, second: str) -> str:
    return f"{first}_{second}"


SPEC_NAMES: Tuple[str, ...] = tuple(SPEC_PROFILES)
STREAM_KERNEL_NAMES: Tuple[str, ...] = tuple(STREAM_KERNELS)
STREAM_MIX_NAMES: Tuple[str, ...] = tuple(
    mix_name(a, b) for a, b in STREAM_MIXES
)
STREAM_NAMES: Tuple[str, ...] = STREAM_KERNEL_NAMES + STREAM_MIX_NAMES
ALL_WORKLOAD_NAMES: Tuple[str, ...] = SPEC_NAMES + STREAM_NAMES


def profile_for(name: str) -> WorkloadProfile:
    """Look up a SPEC or STREAM-kernel profile by name."""
    if name in SPEC_PROFILES:
        return SPEC_PROFILES[name]
    if name in STREAM_PROFILES:
        return STREAM_PROFILES[name]
    raise KeyError(f"unknown workload: {name!r}")


def is_mix(name: str) -> bool:
    return name in STREAM_MIX_NAMES


def mix_components(name: str) -> Tuple[str, str]:
    for first, second in STREAM_MIXES:
        if mix_name(first, second) == name:
            return first, second
    raise KeyError(f"not a mix workload: {name!r}")
