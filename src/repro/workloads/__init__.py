"""Workloads: synthetic SPEC/STREAM traces and attack patterns."""

from .attacks import (
    TimedAccess,
    decoy_pattern_accesses,
    hammer_trace,
    k_pattern_accesses,
    row_press_accesses,
    row_press_trace,
    rowhammer_accesses,
)
from .profiles import (
    ALL_WORKLOAD_NAMES,
    SPEC_NAMES,
    SPEC_PROFILES,
    STREAM_KERNEL_NAMES,
    STREAM_MIX_NAMES,
    STREAM_MIXES,
    STREAM_NAMES,
    STREAM_PROFILES,
    WorkloadProfile,
    is_mix,
    mix_components,
    mix_name,
    profile_for,
)
from .synthetic import (
    rate_mode_traces,
    spec_like_trace,
    stream_like_trace,
    trace_for_profile,
)
from .trace import Trace, TraceRequest

__all__ = [
    "TimedAccess",
    "decoy_pattern_accesses",
    "hammer_trace",
    "k_pattern_accesses",
    "row_press_accesses",
    "row_press_trace",
    "rowhammer_accesses",
    "ALL_WORKLOAD_NAMES",
    "SPEC_NAMES",
    "SPEC_PROFILES",
    "STREAM_KERNEL_NAMES",
    "STREAM_MIX_NAMES",
    "STREAM_MIXES",
    "STREAM_NAMES",
    "STREAM_PROFILES",
    "WorkloadProfile",
    "is_mix",
    "mix_components",
    "mix_name",
    "profile_for",
    "rate_mode_traces",
    "spec_like_trace",
    "stream_like_trace",
    "trace_for_profile",
    "Trace",
    "TraceRequest",
]
