"""Chaos harness: real worker subprocesses, injected deaths, one oracle.

The oracle is brutally simple and that is the point: run the same task
recipes once serially (no queue, no workers) and once distributed
under an injected fault, then compare the result blobs *byte for
byte*.  Content addressing makes this possible — serial and
distributed executions of one recipe land on the same
``objects/<key>.json`` path in their respective stores — and it
subsumes every weaker assertion (same metrics, same counts) at once.

Faults come in two flavors:

* **In-process** (:mod:`repro.security.faults` names, passed to
  ``repro worker --fault``): the worker itself dies after its first
  checkpoint, dies inside the result blob's atomic write, or freezes
  its heartbeat.  Deterministic — the fault fires at the exact
  protocol instant every time.
* **External** (this module's doing): SIGKILL the worker that holds
  the first claim, or overwrite its claim file with garbage.  These
  exercise the reclaim paths no cooperative fault can (the victim gets
  no chance to clean up).

:func:`run_chaos_case` packages the whole experiment — serial
reference, worker fleet, fault injection, supervision, byte
comparison — for both the test matrix and ``tools/chaos_smoke.py``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..results.store import ResultStore, content_key, store_for
from .coordinator import (
    SweepOutcome,
    run_distributed_sweep,
    run_serial_sweep,
)
from .queue import FileWorkQueue, _read_json

#: External fault names (injected by the harness, not the worker).
EXTERNAL_FAULTS = {
    "sigkill-claim-holder":
        "SIGKILL the worker holding the first claim, mid-simulation",
    "corrupt-claim-file":
        "overwrite the first claim file with garbage bytes",
}


def _repo_pythonpath() -> str:
    """A PYTHONPATH that resolves :mod:`repro` in a child process."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}{os.pathsep}{existing}" if existing else src


def worker_command(
    queue_dir: Path,
    results_dir: Path,
    lease_s: float,
    checkpoint_stride: int,
    fault: Optional[str] = None,
    idle_exit_s: float = 15.0,
) -> List[str]:
    """The ``repro worker`` argv for one subprocess worker."""
    cmd = [
        sys.executable, "-m", "repro.cli", "worker",
        "--queue-dir", str(queue_dir),
        "--results-dir", str(results_dir),
        "--lease", str(lease_s),
        "--checkpoint-stride", str(checkpoint_stride),
        "--idle-exit", str(idle_exit_s),
    ]
    if fault is not None:
        cmd += ["--fault", fault]
    return cmd


def spawn_worker(
    queue_dir: Path,
    results_dir: Path,
    lease_s: float,
    checkpoint_stride: int,
    fault: Optional[str] = None,
    idle_exit_s: float = 15.0,
    log_path: Optional[Path] = None,
) -> subprocess.Popen:
    """Start one real ``repro worker`` subprocess (logs to a file)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _repo_pythonpath()
    log = open(log_path, "w") if log_path is not None else subprocess.DEVNULL
    return subprocess.Popen(
        worker_command(
            queue_dir, results_dir, lease_s, checkpoint_stride,
            fault=fault, idle_exit_s=idle_exit_s,
        ),
        stdout=log, stderr=subprocess.STDOUT, env=env,
    )


def wait_for_claim(
    queue: FileWorkQueue, timeout_s: float = 30.0, poll_s: float = 0.02
) -> Tuple[str, str]:
    """Block until any task is claimed; returns ``(task_id, owner)``.

    Raises ``TimeoutError`` if no worker ever claims — the harness's
    way of failing loudly when the fleet never started.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for task_id in queue._ids("claimed"):
            lease = _read_json(queue._path("claimed", task_id))
            if lease is not None and "owner" in lease:
                return task_id, str(lease["owner"])
        time.sleep(poll_s)
    raise TimeoutError(
        f"no task claimed within {timeout_s:.1f}s — did the workers start?"
    )


def owner_pid(owner: str) -> Optional[int]:
    """The pid embedded in a ``host:pid`` lease-owner string."""
    try:
        return int(owner.rsplit(":", 1)[1])
    except (IndexError, ValueError):
        return None


def sigkill_owner(owner: str) -> bool:
    """SIGKILL the process a lease owner string names (same host)."""
    pid = owner_pid(owner)
    if pid is None:
        return False
    try:
        os.kill(pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def corrupt_claim(queue: FileWorkQueue, task_id: str) -> bool:
    """Overwrite a claim file with garbage (a torn/flipped-bit write)."""
    path = queue._path("claimed", task_id)
    if not path.is_file():
        return False
    path.write_text("{torn json \x00\x01")
    # Backdate the mtime so the corrupt-grace reclaim fires immediately
    # instead of waiting out the grace window.
    stamp = time.time() - max(queue.corrupt_grace_s, queue.lease_s) - 1.0
    os.utime(path, (stamp, stamp))
    return True


def compare_blobs(
    serial_store: ResultStore,
    dist_store: ResultStore,
    keys: Sequence[str],
) -> List[str]:
    """Keys whose blob *bytes* differ between the two stores.

    Byte equality of the blob files — not just payload equality — is
    the strongest form of the determinism claim: recipe, payload, and
    canonical serialization all agree.
    """
    mismatched = []
    for key in keys:
        try:
            a = serial_store.blob_path(key).read_bytes()
            b = dist_store.blob_path(key).read_bytes()
        except OSError:
            mismatched.append(key)
            continue
        if a != b:
            mismatched.append(key)
    return mismatched


@dataclass
class ChaosReport:
    """One chaos case's verdict and forensics."""

    fault: Optional[str]
    outcome: SweepOutcome
    mismatched_keys: List[str]
    worker_exit_codes: List[Optional[int]]
    fault_fired: bool = True
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Sweep completed with every blob byte-identical to serial."""
        return not self.mismatched_keys

    def summary_lines(self) -> List[str]:
        lines = [
            f"chaos[{self.fault or 'none'}]: "
            f"{'OK' if self.ok else 'MISMATCH'} — "
            f"{len(self.outcome.results)} task(s), "
            f"worker exits {self.worker_exit_codes}, "
            f"{self.outcome.reclaimed} reclaim(s)"
        ]
        for key in self.mismatched_keys:
            lines.append(f"  blob {key} differs from the serial run")
        lines.extend(f"  {note}" for note in self.notes)
        return lines


def run_chaos_case(
    base_dir: Path,
    recipes: Sequence[Dict[str, Any]],
    fault: Optional[str] = None,
    n_workers: int = 2,
    lease_s: float = 1.5,
    checkpoint_stride: int = 20_000,
    timeout_s: float = 180.0,
    serial_store: Optional[ResultStore] = None,
) -> ChaosReport:
    """Run one full chaos experiment under ``base_dir``.

    Serial reference in ``<base>/serial`` (or a caller-provided
    ``serial_store`` already holding the blobs, so a test matrix
    simulates the reference once), distributed run (queue + store +
    worker logs) in ``<base>/dist``.  ``fault`` is an in-process
    worker fault (given to exactly one worker — the *saboteur*) or an
    :data:`EXTERNAL_FAULTS` name (injected here once the saboteur
    claims); None runs fault-free.

    When a fault is requested the saboteur is spawned *first* and the
    clean workers only after its first claim appears — otherwise a
    fast clean worker could drain the queue before the fault ever
    fires, and the case would pass vacuously.  The distributed store
    is fresh, so every blob byte compared at the end was written by
    the distributed machinery under fire.
    """
    base_dir = Path(base_dir)
    keys = [content_key(recipe) for recipe in recipes]
    if serial_store is None:
        serial_store = store_for(base_dir / "serial")
        run_serial_sweep(recipes, serial_store)

    dist_dir = base_dir / "dist"
    queue = FileWorkQueue(
        dist_dir / "queue", lease_s=lease_s, corrupt_grace_s=0.5,
    )
    dist_store = store_for(dist_dir)
    for recipe in recipes:
        queue.submit(recipe)

    external = fault in EXTERNAL_FAULTS
    worker_fault = None if external else fault
    notes: List[str] = []
    workers: List[subprocess.Popen] = []

    def _spawn(index: int, worker_fault_name: Optional[str]) -> None:
        workers.append(spawn_worker(
            dist_dir / "queue", dist_dir, lease_s, checkpoint_stride,
            fault=worker_fault_name,
            log_path=dist_dir / f"worker-{index}.log",
        ))

    try:
        _spawn(0, worker_fault)   # the saboteur (clean if fault is None)
        fault_fired = True
        if fault is not None:
            task_id, owner = wait_for_claim(queue)
            if fault == "sigkill-claim-holder":
                fault_fired = sigkill_owner(owner)
                notes.append(
                    f"SIGKILLed {owner} holding {task_id}"
                    if fault_fired else f"could not kill {owner}"
                )
            elif fault == "corrupt-claim-file":
                fault_fired = corrupt_claim(queue, task_id)
                notes.append(
                    f"corrupted claim of {task_id} (owner {owner})"
                    if fault_fired else f"claim of {task_id} already gone"
                )
        for i in range(1, n_workers):
            _spawn(i, None)
        outcome = run_distributed_sweep(
            recipes, queue, dist_store,
            serial_grace_s=timeout_s,   # workers exist; never degrade
            timeout_s=timeout_s,
            checkpoint_stride=checkpoint_stride,
        )
    finally:
        exit_codes: List[Optional[int]] = []
        for proc in workers:
            try:
                exit_codes.append(proc.wait(timeout=30.0))
            except subprocess.TimeoutExpired:
                proc.kill()
                exit_codes.append(None)

    mismatched = compare_blobs(serial_store, dist_store, keys)
    return ChaosReport(
        fault=fault,
        outcome=outcome,
        mismatched_keys=mismatched,
        worker_exit_codes=exit_codes,
        fault_fired=fault_fired,
        notes=notes,
    )
