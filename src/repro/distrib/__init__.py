"""Fault-tolerant distributed sweep execution.

The content-addressed result store (:mod:`repro.results.store`) is the
exchange medium; this package adds the *coordination* layer that lets
many worker processes — on one host or many, sharing only a filesystem
— chew through a sharded sweep and survive crashes:

* :mod:`repro.distrib.queue` — a filesystem-backed work queue with
  atomic-rename claims, leases with heartbeats, expiry reclaim with
  exponential backoff, and a poison list for tasks that keep failing.
* :mod:`repro.distrib.worker` — the ``repro worker`` loop: claim,
  simulate (checkpointing engine snapshots into the store at a cycle
  stride so a reclaimed task resumes instead of restarting), ``put()``
  the result blob, mark done.
* :mod:`repro.distrib.coordinator` — shards a batch of scenario sweep
  points into recipe tasks, supervises leases (reclaim, speculation),
  degrades to in-process serial execution when no worker ever shows
  up, and collects results in submission order.
* :mod:`repro.distrib.chaos` — the chaos harness: spawn real worker
  subprocesses, SIGKILL them mid-task, freeze their heartbeats,
  corrupt their claim files — and assert the sweep still completes
  with blobs bit-identical to a serial run.

Exactly-once delivery is not implemented — it falls out of content
addressing: a retried or speculatively re-executed task recomputes the
same deterministic payload under the same content key, so the second
writer deduplicates instead of duplicating.
"""

from .coordinator import (
    DistributedSweepError,
    SweepOutcome,
    run_distributed_sweep,
    run_serial_sweep,
    shard_points,
)
from .queue import (
    ClaimedTask,
    FileWorkQueue,
    QueueStatus,
    Task,
)
from .worker import TaskExecution, execute_claimed_task, run_worker

__all__ = [
    "ClaimedTask",
    "DistributedSweepError",
    "FileWorkQueue",
    "QueueStatus",
    "SweepOutcome",
    "Task",
    "TaskExecution",
    "execute_claimed_task",
    "run_distributed_sweep",
    "run_serial_sweep",
    "run_worker",
    "shard_points",
]
