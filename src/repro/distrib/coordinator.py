"""Sweep coordinator: shard, submit, supervise, collect.

The coordinator is deliberately *not* in the data path: workers talk
to the queue and the store directly, so the coordinator can crash and
restart at any point — resubmitting the same sweep finds every task
(and every finished result blob) exactly where it left off, because
task ids are content keys.

Supervision is a polling loop over queue state:

* **Reclaim** — expired or corrupt leases go back to ``pending`` with
  backoff (``FileWorkQueue.reclaim_expired``).
* **Speculation** — a claim that has been running far longer than its
  peers (``speculate_after_s``) is re-dispatched while the original
  keeps running; whichever execution finishes first wins, the loser's
  byte-identical result deduplicates.
* **Degraded serial mode** — when no worker ever shows any sign of
  life within ``serial_grace_s``, the coordinator stops waiting and
  executes the tasks itself, in-process, through the *same*
  claim → execute → complete path.  Degraded mode is sticky: once
  entered, the coordinator keeps draining every poll (its own
  completions make the queue look alive, so worker-liveness signals
  are no longer consulted), and a task that fails into retry backoff
  is retried by the coordinator itself until it succeeds or poisons.
  A sweep therefore always completes; distribution is an
  optimization, not a dependency.
* **Poison** — a task that keeps failing is quarantined by the queue;
  the coordinator surfaces it as :class:`DistributedSweepError` with
  the stored tracebacks rather than spinning forever.

Results are collected in submission order, read back from the store by
the content keys the ``done`` records carry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..results.store import ResultStore, with_lock_retry
from ..sim.stats import SimResult
from .queue import FileWorkQueue, Task
from .worker import (
    DEFAULT_CHECKPOINT_STRIDE,
    TASK_KIND,
    execute_claimed_task,
    result_alias,
    sweep_task_recipe,
)


class DistributedSweepError(RuntimeError):
    """A distributed sweep cannot complete (poisoned tasks, timeout).

    Carries the queue's poison records so the operator sees the actual
    worker tracebacks, not just "it failed".
    """

    def __init__(
        self, message: str, poison: Optional[List[Dict[str, Any]]] = None
    ) -> None:
        self.poison = list(poison or [])
        details = ""
        if self.poison:
            details = "".join(
                f"\n  task {entry.get('task_id', '?')} "
                f"({entry.get('attempts', '?')} attempts): "
                f"{(entry.get('error') or '?').strip().splitlines()[-1]}"
                for entry in self.poison
            )
        super().__init__(message + details)


def shard_points(
    specs: Iterable[Any], n_requests: int, seed: int
) -> List[Dict[str, Any]]:
    """Expand sweep points into one task recipe per point.

    ``specs`` are :class:`~repro.scenarios.spec.ScenarioSpec` objects
    (anything with a ``recipe()`` method) or already-explicit scenario
    recipe dicts — the forms a :class:`ScenarioGrid` expansion or a
    hand-built batch naturally produces.  The task granularity *is*
    the sweep point: one simulation per task keeps leases short and
    retries cheap, and the store deduplicates across sweeps anyway.
    """
    recipes = []
    for spec in specs:
        scenario = spec.recipe() if hasattr(spec, "recipe") else dict(spec)
        recipes.append(sweep_task_recipe(scenario, n_requests, seed))
    return recipes


@dataclass
class SweepOutcome:
    """A completed sweep: results in submission order, plus how it went."""

    task_ids: List[str]
    result_keys: List[str]
    results: List[SimResult]
    degraded: bool = False            # coordinator ran tasks in-process
    reclaimed: int = 0                # expired-lease reclaims observed
    speculated: int = 0               # straggler re-dispatches issued
    duration_s: float = 0.0
    mode: str = "distributed"         # "serial" | "distributed" | degraded

    def summary_lines(self) -> List[str]:
        """Human-readable wrap-up for the CLI."""
        lines = [
            f"{len(self.results)} task(s) completed ({self.mode} mode) "
            f"in {self.duration_s:.2f}s"
        ]
        if self.reclaimed:
            lines.append(f"  {self.reclaimed} expired lease(s) reclaimed")
        if self.speculated:
            lines.append(f"  {self.speculated} straggler(s) speculated")
        return lines


def run_serial_sweep(
    recipes: Sequence[Dict[str, Any]],
    store: ResultStore,
) -> SweepOutcome:
    """Execute task recipes in-process, serially, against the store.

    The reference the chaos harness compares against: same recipes,
    same store addressing, no queue at all.  Blobs written here must
    be byte-identical to what any distributed execution produces.
    """
    from .worker import build_simulator

    started = time.monotonic()
    task_ids: List[str] = []
    result_keys: List[str] = []
    results: List[SimResult] = []
    for recipe in recipes:
        from ..results.store import content_key

        task_id = content_key(recipe)
        payload = store.fetch(recipe)
        if payload is None:
            result = build_simulator(recipe).run()
            payload = result.to_json()
        else:
            result = SimResult.from_json(payload)
        key, _path, _created = with_lock_retry(lambda: store.put(
            recipe, payload, name=result_alias(task_id), kind=TASK_KIND,
            meta={"owner": "serial"},
        ))
        task_ids.append(task_id)
        result_keys.append(key)
        results.append(result)
    return SweepOutcome(
        task_ids=task_ids,
        result_keys=result_keys,
        results=results,
        degraded=False,
        duration_s=time.monotonic() - started,
        mode="serial",
    )


def _collect(
    queue: FileWorkQueue,
    store: ResultStore,
    tasks: Sequence[Task],
) -> tuple:
    """Read every done task's result back (keys + parsed results)."""
    result_keys: List[str] = []
    results: List[SimResult] = []
    for task in tasks:
        record = queue.done_record(task.task_id)
        if record is None:
            raise DistributedSweepError(
                f"task {task.task_id} has no done record at collection"
            )
        key = record.get("result_key", task.task_id)
        payload = store.get(key)
        if payload is None:
            # The done record survived but the blob did not (operator
            # deleted the store?).  Recompute serially — correctness
            # over cleverness.
            result = _recompute(task, store)
        else:
            result = SimResult.from_json(payload)
        result_keys.append(key)
        results.append(result)
    return result_keys, results


def _recompute(task: Task, store: ResultStore) -> SimResult:
    """Serial fallback for a done task whose blob went missing."""
    from .worker import build_simulator

    result = build_simulator(task.recipe).run()
    with_lock_retry(lambda: store.put(
        task.recipe, result.to_json(),
        name=result_alias(task.task_id), kind=TASK_KIND,
        meta={"owner": "collector-recompute"},
    ))
    return result


def run_distributed_sweep(
    recipes: Sequence[Dict[str, Any]],
    queue: FileWorkQueue,
    store: ResultStore,
    poll_s: float = 0.05,
    serial_grace_s: float = 5.0,
    speculate_after_s: Optional[float] = None,
    timeout_s: Optional[float] = None,
    checkpoint_stride: Optional[int] = DEFAULT_CHECKPOINT_STRIDE,
) -> SweepOutcome:
    """Submit task recipes and supervise until every one is terminal.

    Workers are *external*: anything running ``repro worker`` against
    the same queue/store directories.  The coordinator only submits,
    reclaims, speculates, and — when ``serial_grace_s`` elapses with
    no sign of any worker — degrades to executing the remaining tasks
    itself through the identical claim path.  Raises
    :class:`DistributedSweepError` on poisoned tasks or ``timeout_s``.
    """
    started = time.monotonic()
    tasks = [queue.submit(recipe) for recipe in recipes]
    wanted = {task.task_id for task in tasks}
    reclaimed_total = 0
    speculated_total = 0
    degraded = False
    worker_seen = False

    def _progress() -> tuple:
        """(done, poisoned, claimed-by-others) among *our* tasks."""
        done = sum(
            1 for task in tasks
            if queue.done_record(task.task_id) is not None
        )
        poisoned = [
            record for task in tasks
            if (record := queue.poison_record(task.task_id)) is not None
        ]
        return done, poisoned

    baseline_done, _ = _progress()
    while True:
        done, poisoned = _progress()
        if poisoned:
            raise DistributedSweepError(
                f"{len(poisoned)} task(s) poisoned after repeated "
                "failures",
                poison=poisoned,
            )
        if done == len(tasks):
            break
        if timeout_s is not None and (
            time.monotonic() - started > timeout_s
        ):
            status = queue.status()
            raise DistributedSweepError(
                f"sweep timed out after {timeout_s:.1f}s "
                f"({done}/{len(tasks)} done; " +
                "; ".join(status.summary_lines()) + ")"
            )
        reclaimed_total += len([
            task_id for task_id in queue.reclaim_expired()
            if task_id in wanted
        ])
        status = queue.status()
        if status.claimed or done > baseline_done:
            worker_seen = True
        if speculate_after_s is not None:
            now = time.time()
            for lease in status.leases:
                if lease["task_id"] not in wanted:
                    continue
                if now - lease.get("claimed_at", now) > speculate_after_s:
                    if queue.speculate(lease["task_id"]):
                        speculated_total += 1
        if degraded or (
            not worker_seen
            and time.monotonic() - started > serial_grace_s
        ):
            # Once degraded, *stay* degraded: our own completions make
            # the queue look alive (done counts rise, claims appear),
            # but no worker exists to pick up a task that failed into
            # retry backoff — the coordinator must keep draining until
            # every task is done or poisoned.
            degraded = True
            executed = _drain_in_process(
                queue, store, wanted, checkpoint_stride
            )
            if executed:
                continue  # progress made: re-check done/poison now
            # Nothing claimable (every open task is in retry backoff):
            # fall through to the poll sleep instead of busy-spinning.
        time.sleep(poll_s)

    result_keys, results = _collect(queue, store, tasks)
    return SweepOutcome(
        task_ids=[task.task_id for task in tasks],
        result_keys=result_keys,
        results=results,
        degraded=degraded,
        reclaimed=reclaimed_total,
        speculated=speculated_total,
        duration_s=time.monotonic() - started,
        mode="degraded serial" if degraded else "distributed",
    )


def _drain_in_process(
    queue: FileWorkQueue,
    store: ResultStore,
    wanted: set,
    checkpoint_stride: Optional[int],
) -> int:
    """Degraded mode: the coordinator executes claimable tasks itself.

    Same claim → execute → complete path a worker takes, so a worker
    that appears mid-drain cooperates instead of conflicting — the
    queue's rename semantics and the store's dedup don't care who the
    executor is.  Returns how many claims were processed (success or
    failure); zero means every open task is waiting out a retry
    backoff, so the caller should sleep rather than spin.
    """
    owner = "coordinator-serial"
    executed = 0
    while True:
        queue.reclaim_expired()
        claimed = queue.claim(owner, want=wanted)
        if claimed is None:
            return executed
        executed += 1
        try:
            execute_claimed_task(
                queue, store, claimed,
                checkpoint_stride=checkpoint_stride,
            )
        except Exception:
            import traceback

            queue.fail(claimed.task_id, owner, traceback.format_exc())
