"""The ``repro worker`` loop: claim, simulate, checkpoint, put, done.

A worker owns no state the queue and store do not hold: its task is an
immutable recipe, its progress is a checkpoint blob in the store, its
lease is a file in the queue.  Killing a worker at any instant
therefore loses nothing — the lease expires, the task is reclaimed,
and the next worker resumes from the last checkpoint (or from scratch)
to produce the byte-identical result blob.

Execution of one claimed task:

1. Rebuild the simulator from the task recipe
   (:func:`~repro.scenarios.spec.spec_from_recipe` + the same
   compiled-trace path :func:`~repro.sim.system.simulate_workload`
   uses — bit-identical construction is what makes checkpoints and
   dedup sound).
2. If the store holds a checkpoint for this task (a previous owner died
   mid-run), restore it and continue from its cycle.
3. Run in ``checkpoint_stride``-cycle strides, snapshotting the engine
   into the store after each stride (one blob per task, overwritten in
   place) while a daemon thread heartbeats the lease.
4. ``put()`` the result under the task recipe — the result blob's
   content key *is* the task id — then drop the checkpoint's index
   alias (the superseded blob becomes ordinary garbage for ``gc``) and
   mark the task done.

Process-layer chaos faults (:mod:`repro.security.faults`) hook the
protocol-critical instants: death right after the first checkpoint
(``worker-kill-mid-task``), death inside the result blob's atomic
write (``worker-kill-mid-put``), and a heartbeat that silently stops
refreshing the lease (``worker-freeze-heartbeat``).
"""

from __future__ import annotations

import base64
import os
import pickle
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..results import store as store_mod
from ..results.store import ResultStore, with_lock_retry
from ..scenarios.spec import spec_from_recipe
from ..security import faults
from ..sim.stats import SimResult
from ..sim.system import SystemSimulator
from .queue import ClaimedTask, FileWorkQueue, worker_identity

#: Recipe ``kind`` tags this layer owns (the store's no-collision
#: contract: payload shape is a function of the kind).
TASK_KIND = "sweep-task"
CHECKPOINT_KIND = "sweep-checkpoint"

#: Default cycles between engine checkpoints.  Small enough that a
#: reclaimed mid-run task skips most of its work on resume, large
#: enough that snapshot pickling stays invisible next to simulation.
DEFAULT_CHECKPOINT_STRIDE = 50_000

#: Distinctive exit codes so the chaos harness (and a puzzled operator)
#: can tell an injected death from a real crash.
KILL_MID_TASK_EXIT = 43
KILL_MID_PUT_EXIT = 44


def install_shutdown_handler(
    stop_event: Optional[threading.Event] = None,
) -> threading.Event:
    """SIGTERM/SIGINT set a stop event instead of killing the worker.

    The graceful half of the worker's crash story: a *terminated*
    worker (deploy rollover, scale-down) finishes its current
    checkpoint stride, releases its claim back to ``pending`` with no
    attempt penalty, and exits 0 — only a SIGKILL leaves a lease to
    expire.  Must be called from the main thread (a signal-module
    constraint); the CLI entry point does.
    """
    if stop_event is None:
        stop_event = threading.Event()

    def _handle(signum, frame):
        stop_event.set()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    return stop_event


def sweep_task_recipe(
    scenario_recipe: Dict[str, Any], n_requests: int, seed: int
) -> Dict[str, Any]:
    """The recipe of one distributed sweep task *and* its result blob.

    Deliberately field-compatible with
    :func:`repro.scenarios.run.scenario_run_recipe` minus the kind tag:
    the scenario recipe plus the run shape.  Task id and result key are
    both this recipe's content key, which is the exactly-once
    mechanism — any re-execution lands on the same address.
    """
    return {
        "kind": TASK_KIND,
        "scenario": scenario_recipe,
        "n_requests": n_requests,
        "seed": seed,
    }


def checkpoint_recipe(task_id: str) -> Dict[str, Any]:
    """The store recipe of a task's (single, overwritten) checkpoint."""
    return {"kind": CHECKPOINT_KIND, "task_id": task_id}


def checkpoint_alias(task_id: str) -> str:
    """The index alias keeping a task's checkpoint alive until done."""
    return f"checkpoint/{task_id}"


def result_alias(task_id: str) -> str:
    """The index alias under which a finished task's result is found."""
    return f"sweep/{task_id}"


def build_simulator(recipe: Dict[str, Any]) -> SystemSimulator:
    """Reconstruct the exact simulator a task recipe describes.

    Mirrors :func:`repro.sim.system.simulate_workload`'s construction
    path (same compiled-trace caches, same seeds) so a worker-built
    simulator is bit-identical to a serial in-process one — the
    precondition for both checkpoint restore and content-key dedup.
    """
    from ..workloads.compiled import (
        compiled_rate_mode_traces,
        compiled_source_traces,
    )

    spec = spec_from_recipe(recipe["scenario"])
    system = spec.system
    n_requests = int(recipe["n_requests"])
    seed = int(recipe["seed"])
    if isinstance(spec.cores, str):
        compiled = compiled_rate_mode_traces(
            spec.cores, system.n_cores, n_requests, seed, system.mapper()
        )
    else:
        compiled = compiled_source_traces(
            spec.cores, n_requests, seed, system.mapper()
        )
    return SystemSimulator(
        system, defense=spec.defense, tmro_ns=spec.tmro_ns,
        compiled=compiled,
    )


def _encode_snapshot(snap) -> str:
    """Engine snapshot → JSON-safe text (pickle inside base64)."""
    return base64.b64encode(
        pickle.dumps(snap, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode_snapshot(text: str):
    """Inverse of :func:`_encode_snapshot`; None on any corruption."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception:
        return None


def _try_resume(
    store: ResultStore, task_id: str, sim: SystemSimulator
) -> Optional[int]:
    """Restore a stored checkpoint into ``sim``; returns its cycle.

    Any defect — missing blob, torn pickle, engine or topology
    mismatch — falls back to from-scratch execution (returns None).
    A checkpoint is an optimization, never a correctness dependency.
    """
    payload = store.fetch(checkpoint_recipe(task_id))
    if not isinstance(payload, dict):
        return None
    snap = _decode_snapshot(payload.get("snapshot_b64", ""))
    if snap is None:
        return None
    try:
        sim.restore(snap)
    except Exception:
        return None
    return int(payload.get("cycle", sim.now))


class _HeartbeatThread(threading.Thread):
    """Refreshes one claim's lease until stopped.

    Under the ``worker-freeze-heartbeat`` fault the thread sends its
    first beat and then goes silent while the simulation keeps
    running — the straggler whose lease expires under it.
    """

    def __init__(
        self, queue: FileWorkQueue, claimed: ClaimedTask,
        interval_s: float,
    ) -> None:
        super().__init__(daemon=True)
        self.queue = queue
        self.claimed = claimed
        self.interval_s = interval_s
        self.stop_event = threading.Event()
        self.beats = 0

    def run(self) -> None:
        frozen = faults.fault_active("worker-freeze-heartbeat")
        while not self.stop_event.wait(self.interval_s):
            if frozen and self.beats >= 1:
                continue
            if not self.queue.heartbeat(
                self.claimed.task_id, self.claimed.owner
            ):
                # Lease lost (reclaimed or corrupted).  Keep simulating
                # anyway: the result deduplicates by content key, so
                # finishing is never wrong — only no longer exclusive.
                continue
            self.beats += 1

    def stop(self) -> None:
        self.stop_event.set()


@dataclass(frozen=True)
class TaskExecution:
    """What one claimed-task execution did (for logs and tests)."""

    task_id: str
    result_key: str
    first_writer: bool            # False: an identical blob already existed
    resumed_from_cycle: Optional[int]
    checkpoints_written: int
    elapsed_cycles: int


def execute_claimed_task(
    queue: FileWorkQueue,
    store: ResultStore,
    claimed: ClaimedTask,
    checkpoint_stride: Optional[int] = DEFAULT_CHECKPOINT_STRIDE,
    heartbeat_interval_s: Optional[float] = None,
    stop_event: Optional[threading.Event] = None,
) -> Optional[TaskExecution]:
    """Run one claimed task to completion and mark it done.

    Raises on simulation failure (the caller translates that into
    ``queue.fail`` with the traceback).  ``checkpoint_stride=None``
    disables checkpointing (pure from-scratch execution).

    A set ``stop_event`` (graceful shutdown) is honored at stride
    boundaries: the just-written checkpoint makes the work-so-far
    durable, the claim is *released* back to pending with no attempt
    penalty (:meth:`FileWorkQueue.release`), and None is returned —
    the next claimant resumes from that checkpoint.
    """
    task = claimed.task
    recipe = task.recipe
    sim = build_simulator(recipe)
    resumed_from = None
    if checkpoint_stride:
        resumed_from = _try_resume(store, task.task_id, sim)

    if heartbeat_interval_s is None:
        heartbeat_interval_s = max(0.01, queue.lease_s / 3.0)
    heartbeat = _HeartbeatThread(queue, claimed, heartbeat_interval_s)
    heartbeat.start()
    try:
        checkpoints = 0
        if checkpoint_stride:
            target = sim.now + checkpoint_stride
            while not sim.run_until(target):
                snap = sim.snapshot()
                with_lock_retry(lambda: store.put(
                    checkpoint_recipe(task.task_id),
                    {
                        "task_id": task.task_id,
                        "cycle": sim.now,
                        "engine": snap.engine,
                        "snapshot_b64": _encode_snapshot(snap),
                    },
                    name=checkpoint_alias(task.task_id),
                    kind=CHECKPOINT_KIND,
                    meta={"cycle": sim.now, "owner": claimed.owner},
                    overwrite=True,
                ))
                checkpoints += 1
                if (
                    checkpoints == 1
                    and faults.fault_active("worker-kill-mid-task")
                ):
                    os._exit(KILL_MID_TASK_EXIT)
                if stop_event is not None and stop_event.is_set():
                    # Graceful shutdown: the checkpoint just written
                    # is the hand-off point.  Release, don't fail.
                    queue.release(task.task_id, claimed.owner)
                    return None
                target += checkpoint_stride
        else:
            sim.run_until(None)
        result: SimResult = sim.finish()

        if faults.fault_active("worker-kill-mid-put"):
            store_mod._CRASH_AFTER_TMP_WRITE = (
                lambda: os._exit(KILL_MID_PUT_EXIT)
            )
        try:
            result_key, _path, created = with_lock_retry(lambda: store.put(
                recipe,
                result.to_json(),
                name=result_alias(task.task_id),
                kind=TASK_KIND,
                meta={"owner": claimed.owner, "attempts": claimed.attempts},
            ))
        finally:
            store_mod._CRASH_AFTER_TMP_WRITE = None
        if checkpoint_stride:
            # Retire the checkpoint: its blob becomes unreferenced
            # garbage that the next `repro results gc` collects.
            store.unalias(checkpoint_alias(task.task_id))
        queue.complete(task.task_id, claimed.owner, result_key)
        return TaskExecution(
            task_id=task.task_id,
            result_key=result_key,
            first_writer=created,
            resumed_from_cycle=resumed_from,
            checkpoints_written=checkpoints,
            elapsed_cycles=result.elapsed_cycles,
        )
    finally:
        heartbeat.stop()
        heartbeat.join(timeout=2.0)


@dataclass
class WorkerSummary:
    """One ``run_worker`` invocation's tally."""

    owner: str
    executed: int = 0
    failed: int = 0
    deduplicated: int = 0
    released: int = 0             # claims handed back on graceful stop
    stopped: bool = False         # exited via SIGTERM/SIGINT


def run_worker(
    queue: FileWorkQueue,
    store: ResultStore,
    owner: Optional[str] = None,
    max_tasks: Optional[int] = None,
    idle_exit_s: float = 10.0,
    poll_s: float = 0.05,
    checkpoint_stride: Optional[int] = DEFAULT_CHECKPOINT_STRIDE,
    fault: Optional[str] = None,
    stop_event: Optional[threading.Event] = None,
) -> WorkerSummary:
    """Claim-and-execute until the queue is drained (or idle too long).

    The loop also reclaims expired peers' leases each idle pass, so a
    fleet of bare workers makes progress even with no coordinator
    supervising.  Exits when every submitted task is terminal, after
    ``idle_exit_s`` without finding work, after ``max_tasks``
    executions, or — gracefully — when ``stop_event`` is set (SIGTERM
    via :func:`install_shutdown_handler`): the in-flight task finishes
    its checkpoint stride, its claim is released penalty-free, and the
    summary reports ``stopped``.  ``fault`` injects one named chaos
    fault process-wide before the first claim (the ``repro worker
    --fault`` path).
    """
    if owner is None:
        owner = worker_identity()
    if fault is not None:
        faults.inject(fault)
    summary = WorkerSummary(owner=owner)
    last_work = time.monotonic()
    while True:
        if stop_event is not None and stop_event.is_set():
            summary.stopped = True
            break
        if max_tasks is not None and summary.executed >= max_tasks:
            break
        claimed = queue.claim(owner)
        if claimed is None:
            queue.reclaim_expired()
            status = queue.status()
            if status.total_tasks and not status.open_tasks:
                break  # every task done or poisoned
            if time.monotonic() - last_work > idle_exit_s:
                break
            time.sleep(poll_s)
            continue
        last_work = time.monotonic()
        try:
            execution = execute_claimed_task(
                queue, store, claimed,
                checkpoint_stride=checkpoint_stride,
                stop_event=stop_event,
            )
        except Exception:
            summary.failed += 1
            queue.fail(
                claimed.task_id, owner, traceback.format_exc()
            )
            continue
        if execution is None:
            # Graceful stop mid-task: claim already released.
            summary.released += 1
            summary.stopped = True
            break
        summary.executed += 1
        if not execution.first_writer:
            summary.deduplicated += 1
    return summary
