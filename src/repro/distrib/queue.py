"""Filesystem-backed work queue with lease-based claims.

The queue is a directory five subdirectories deep, sharing nothing but
POSIX rename semantics — which is exactly what makes it usable by
worker processes on any host that can see the filesystem:

``tasks/<id>.json``
    The immutable task body: the content-addressed recipe of one sweep
    point.  ``<id>`` *is* the recipe's content key, so a task and the
    result blob it will produce share an address.  Written once at
    submission; never moved, never rewritten — every other file is
    disposable state *about* the task, so a corrupted claim can always
    be recovered from the body.

``pending/<id>.json``
    A claimable marker carrying retry state (``attempts``, the
    backoff's ``not_before``).  Claiming is one atomic
    ``rename(pending/<id>, claimed/<id>)`` — the filesystem guarantees
    exactly one winner; losers get ``FileNotFoundError`` and move on.

``claimed/<id>.json``
    The claim marker, rewritten (atomically) by the winner to carry its
    lease: owner, claim time, and a deadline the owner pushes forward
    by heartbeating.  An expired or unreadable lease is *reclaimed*:
    renamed back to ``pending/`` (again one atomic winner) with
    ``attempts`` bumped and an exponential-backoff ``not_before``.

``done/<id>.json``
    Terminal success: the result blob's content key.  Written before
    the claim is released, so a crash between the two reads as done.
    Because retried and speculated executions of one task produce the
    same deterministic payload under the same content key, a second
    finisher simply observes ``done`` already present and discards.

``poison/<id>.json``
    Terminal failure: a task that failed (or had its lease expire)
    ``max_attempts`` times is quarantined here with its traceback
    instead of looping forever.

Every state transition is a single ``os.rename`` (one winner).  The
transitions back to ``pending`` (fail, reclaim, speculate) write the
retry state into the claim file *before* the rename, so the rename is
the only visible step — a pending file never briefly holds stale lease
JSON, and nothing is rewritten after the rename (which could resurrect
a file a faster claimant already moved).  The one exception is
claiming itself: the winner can only write its lease *after* the
rename, so a claim file may briefly hold non-lease JSON — readers
treat that like a torn write, judged by the mtime corrupt-grace.
Every read path treats a missing, partial, or corrupt file as
recoverable state, never as an exception.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from ..results.store import content_key

QUEUE_VERSION = 1

#: Subdirectories; creation order is irrelevant (all made eagerly).
_STATE_DIRS = ("tasks", "pending", "claimed", "done", "poison")

#: Grace period before an *unreadable* claim file (torn write, chaos
#: corruption) counts as expired — judged by file mtime, since the
#: lease deadline inside it is unreadable by definition.
DEFAULT_CORRUPT_GRACE_S = 2.0

_TMP_COUNTER = itertools.count()


def worker_identity() -> str:
    """This process's lease-owner string (``host:pid``)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    """Temp-write + rename, per-process-unique temp names (store idiom)."""
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
    )
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Parse a state file; None for missing/corrupt (always tolerant)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


@dataclass(frozen=True)
class Task:
    """One unit of work: an immutable content-addressed recipe."""

    task_id: str
    recipe: Dict[str, Any]


@dataclass(frozen=True)
class ClaimedTask:
    """A task one worker holds the lease on."""

    task: Task
    owner: str
    attempts: int
    deadline: float

    @property
    def task_id(self) -> str:
        """The task's content key (convenience passthrough)."""
        return self.task.task_id


@dataclass
class QueueStatus:
    """A point-in-time census of the queue for ``repro queue status``."""

    pending: int
    claimed: int
    done: int
    poisoned: int
    total_tasks: int
    leases: List[Dict[str, Any]] = field(default_factory=list)
    poison: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def open_tasks(self) -> int:
        """Tasks not yet terminally done or poisoned."""
        return self.total_tasks - self.done - self.poisoned

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable census for ``--json`` and ``/status``."""
        return {
            "pending": self.pending,
            "claimed": self.claimed,
            "done": self.done,
            "poisoned": self.poisoned,
            "total_tasks": self.total_tasks,
            "open_tasks": self.open_tasks,
            "leases": [dict(lease) for lease in self.leases],
            "poison": [dict(entry) for entry in self.poison],
        }

    def summary_lines(self) -> List[str]:
        """Human-readable census for the CLI."""
        lines = [
            f"{self.total_tasks} task(s): {self.pending} pending, "
            f"{self.claimed} claimed, {self.done} done, "
            f"{self.poisoned} poisoned"
        ]
        now = time.time()
        for lease in self.leases:
            remaining = lease.get("deadline", 0) - now
            lines.append(
                f"  claimed {lease['task_id']} by "
                f"{lease.get('owner', '?')} "
                f"(lease {'expires in %.1fs' % remaining if remaining > 0 else 'EXPIRED %.1fs ago' % -remaining}, "
                f"attempt {lease.get('attempts', '?')})"
            )
        for entry in self.poison:
            first_line = (entry.get("error") or "?").strip().splitlines()
            lines.append(
                f"  poisoned {entry['task_id']} after "
                f"{entry.get('attempts', '?')} attempt(s): "
                f"{first_line[-1] if first_line else '?'}"
            )
        return lines


class FileWorkQueue:
    """Lease-based task queue on a shared directory.

    ``lease_s`` is how long a claim stays valid without a heartbeat;
    workers refresh at a fraction of it.  ``max_attempts`` bounds
    retries (failure *or* lease expiry) before a task is poisoned.
    Backoff between retries is exponential:
    ``backoff_base_s * 2**(attempts-1)``, capped at ``backoff_max_s``.
    """

    def __init__(
        self,
        root: Path,
        lease_s: float = 30.0,
        max_attempts: int = 4,
        backoff_base_s: float = 0.25,
        backoff_max_s: float = 30.0,
        corrupt_grace_s: float = DEFAULT_CORRUPT_GRACE_S,
    ) -> None:
        self.root = Path(root)
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.corrupt_grace_s = corrupt_grace_s
        for name in _STATE_DIRS:
            (self.root / name).mkdir(parents=True, exist_ok=True)

    # -- paths -----------------------------------------------------------

    def _path(self, state: str, task_id: str) -> Path:
        return self.root / state / f"{task_id}.json"

    def _ids(self, state: str) -> List[str]:
        """Task ids present in one state dir, sorted for determinism."""
        directory = self.root / state
        return sorted(
            path.stem for path in directory.glob("*.json")
        )

    # -- submission ------------------------------------------------------

    def submit(self, recipe: Mapping[str, Any]) -> Task:
        """Enqueue one recipe; idempotent on re-submission.

        The task id is the recipe's content key, so submitting the
        same recipe twice (a coordinator restarted after a crash)
        finds the existing task in whatever state it reached and does
        not duplicate it.
        """
        task_id = content_key(recipe)
        task = Task(task_id=task_id, recipe=dict(recipe))
        body_path = self._path("tasks", task_id)
        if not body_path.is_file():
            _atomic_write_json(body_path, {
                "version": QUEUE_VERSION,
                "task_id": task_id,
                "recipe": task.recipe,
                "submitted_at": time.time(),
            })
        in_flight = any(
            self._path(state, task_id).is_file()
            for state in ("pending", "claimed", "done", "poison")
        )
        if not in_flight:
            _atomic_write_json(self._path("pending", task_id), {
                "attempts": 0,
                "not_before": 0.0,
            })
        return task

    def task(self, task_id: str) -> Optional[Task]:
        """The immutable task body (None if unknown or unreadable)."""
        body = _read_json(self._path("tasks", task_id))
        if body is None or not isinstance(body.get("recipe"), dict):
            return None
        return Task(task_id=task_id, recipe=body["recipe"])

    # -- claiming --------------------------------------------------------

    def claim(
        self,
        owner: str,
        now: Optional[float] = None,
        want: Optional[set] = None,
    ) -> Optional[ClaimedTask]:
        """Claim the first eligible pending task for ``owner``.

        The claim itself is ``rename(pending/<id>, claimed/<id>)`` —
        atomic, exactly one winner under any number of concurrent
        claimants — after which the winner rewrites the claim file
        with its lease.  Until that rewrite lands the claim file still
        holds the pending-state JSON (no ``owner``/``deadline``);
        :meth:`reclaim_expired` treats that like a torn write and
        leaves it alone inside the corrupt-grace window, so a claim is
        never reclaimed out from under its winner mid-handshake — and
        a claimant that truly dies in the window is recovered once the
        grace expires.  Tasks still inside their retry backoff are
        skipped,
        as is anything outside ``want`` (a coordinator draining only
        its own sweep on a shared queue).
        """
        if now is None:
            now = time.time()
        for task_id in self._ids("pending"):
            if want is not None and task_id not in want:
                continue
            pending_path = self._path("pending", task_id)
            state = _read_json(pending_path) or {"attempts": 1}
            if state.get("not_before", 0.0) > now:
                continue
            if self._path("done", task_id).is_file():
                # Stale marker for a task someone already finished
                # (e.g. a speculated copy): retire it instead of
                # running the work a third time.
                try:
                    pending_path.unlink()
                except OSError:
                    pass
                continue
            claimed_path = self._path("claimed", task_id)
            try:
                os.rename(pending_path, claimed_path)
            except OSError:
                continue  # somebody else won the rename
            task = self.task(task_id)
            if task is None:
                # Body lost or corrupt: nothing can ever execute this.
                self._quarantine(
                    task_id,
                    attempts=int(state.get("attempts", 0)),
                    error="task body missing or unreadable",
                    owner=owner,
                    from_state="claimed",
                )
                continue
            attempts = int(state.get("attempts", 0)) + 1
            deadline = now + self.lease_s
            _atomic_write_json(claimed_path, {
                "owner": owner,
                "attempts": attempts,
                "claimed_at": now,
                "deadline": deadline,
                "heartbeats": 0,
            })
            return ClaimedTask(
                task=task, owner=owner, attempts=attempts,
                deadline=deadline,
            )
        return None

    def heartbeat(
        self, task_id: str, owner: str, now: Optional[float] = None
    ) -> bool:
        """Push the lease deadline forward; False if the claim is lost.

        A False return means the lease was reclaimed (or the file
        corrupted) under the worker.  The worker may still finish the
        task — its result deduplicates — but it no longer holds any
        exclusivity.
        """
        if now is None:
            now = time.time()
        path = self._path("claimed", task_id)
        lease = _read_json(path)
        if lease is None or lease.get("owner") != owner:
            return False
        lease["deadline"] = now + self.lease_s
        lease["heartbeats"] = int(lease.get("heartbeats", 0)) + 1
        _atomic_write_json(path, lease)
        return True

    # -- terminal transitions --------------------------------------------

    def complete(
        self, task_id: str, owner: str, result_key: str
    ) -> bool:
        """Record success; returns False when already done (dedup).

        ``done`` is written *before* the claim is released so a crash
        between the two steps still reads as done.  If another
        execution (a speculated copy, a resumed retry) finished first,
        the existing record wins and this call is a no-op — the result
        blob is byte-identical either way.
        """
        done_path = self._path("done", task_id)
        first = not done_path.is_file()
        if first:
            _atomic_write_json(done_path, {
                "task_id": task_id,
                "result_key": result_key,
                "owner": owner,
                "completed_at": time.time(),
            })
        self._release_claim(task_id, owner)
        return first

    def fail(
        self,
        task_id: str,
        owner: str,
        error: str,
        now: Optional[float] = None,
    ) -> str:
        """Record a failed execution; returns the task's new state.

        Under ``max_attempts`` the task goes back to ``pending`` with
        exponential backoff; at the limit it is quarantined in
        ``poison`` with the traceback.  Returns ``"pending"``,
        ``"poison"``, or ``"lost"`` when this owner no longer held the
        claim (the reclaimer already decided the task's fate).
        """
        if now is None:
            now = time.time()
        claimed_path = self._path("claimed", task_id)
        lease = _read_json(claimed_path)
        if lease is None or lease.get("owner") != owner:
            return "lost"
        attempts = int(lease.get("attempts", 1))
        if attempts >= self.max_attempts:
            self._quarantine(
                task_id, attempts=attempts, error=error, owner=owner,
                from_state="claimed",
            )
            return "poison"
        # Retry state goes into the claim file *before* the rename, so
        # the rename is the single visible transition: the pending file
        # never holds the old lease JSON (which a concurrent claimant
        # would read as zero backoff).
        _atomic_write_json(claimed_path, {
            "attempts": attempts,
            "not_before": now + self._backoff(attempts),
            "last_error": error,
        })
        try:
            os.rename(claimed_path, self._path("pending", task_id))
        except OSError:
            return "lost"
        return "pending"

    def release(
        self, task_id: str, owner: str, now: Optional[float] = None
    ) -> bool:
        """Hand a live claim back to ``pending`` with no penalty.

        The graceful-shutdown transition: a worker that received
        SIGTERM mid-task finishes its current checkpoint stride and
        *releases* — unlike :meth:`fail` or an expiry reclaim, the
        attempt that was underway is uncounted (claiming bumped
        ``attempts``; releasing decrements it back) and there is no
        backoff, so the next worker picks the task up immediately and
        resumes from the released worker's checkpoint.  Returns False
        when this owner no longer holds the claim.
        """
        if now is None:
            now = time.time()
        claimed_path = self._path("claimed", task_id)
        lease = _read_json(claimed_path)
        if lease is None or lease.get("owner") != owner:
            return False
        # Same single-visible-transition discipline as fail(): the
        # pending state lands in the claim file before the rename.
        _atomic_write_json(claimed_path, {
            "attempts": max(0, int(lease.get("attempts", 1)) - 1),
            "not_before": now,
            "released_by": owner,
        })
        try:
            os.rename(claimed_path, self._path("pending", task_id))
        except OSError:
            return False
        return True

    def _quarantine(
        self,
        task_id: str,
        attempts: int,
        error: str,
        owner: str,
        from_state: str,
    ) -> None:
        """Move a task to the poison list (atomic rename + rewrite)."""
        poison_path = self._path("poison", task_id)
        try:
            os.rename(self._path(from_state, task_id), poison_path)
        except OSError:
            return  # lost the race; someone else decided
        _atomic_write_json(poison_path, {
            "task_id": task_id,
            "attempts": attempts,
            "error": error,
            "owner": owner,
            "poisoned_at": time.time(),
        })

    def _release_claim(self, task_id: str, owner: str) -> None:
        """Drop this owner's claim file, never someone else's."""
        path = self._path("claimed", task_id)
        lease = _read_json(path)
        if lease is not None and lease.get("owner") != owner:
            return  # the claim was stolen; it belongs to the new owner
        try:
            path.unlink()
        except OSError:
            pass

    # -- supervision -----------------------------------------------------

    def _backoff(self, attempts: int) -> float:
        """Exponential retry delay for a task on its ``attempts``-th try."""
        return min(
            self.backoff_base_s * (2 ** max(0, attempts - 1)),
            self.backoff_max_s,
        )

    def reclaim_expired(self, now: Optional[float] = None) -> List[str]:
        """Return expired/corrupt claims to ``pending`` (or poison).

        A claim is expired when its lease deadline has passed.  A claim
        file that holds no lease — unreadable (torn write, corruption)
        *or* readable but lacking ``owner``/``deadline`` (a claim or
        retry transition caught between its rewrite and its rename) —
        is judged by mtime instead: left alone inside
        ``corrupt_grace_s`` (the transition is probably in flight) and
        reclaimed past it (the transitioning process died).  The
        reclaim rename has exactly one winner, so concurrent
        supervisors never double-bump ``attempts``.  Claims whose task
        already has a ``done`` record are simply released.
        """
        if now is None:
            now = time.time()
        reclaimed: List[str] = []
        for task_id in self._ids("claimed"):
            claimed_path = self._path("claimed", task_id)
            if self._path("done", task_id).is_file():
                try:
                    claimed_path.unlink()
                except OSError:
                    pass
                continue
            lease = _read_json(claimed_path)
            if lease is None or "owner" not in lease or "deadline" not in lease:
                try:
                    age = now - claimed_path.stat().st_mtime
                except OSError:
                    continue
                if age < self.corrupt_grace_s:
                    continue  # a transition might be mid-flight
                if lease is None:
                    attempts = 1  # unknowable; assume first try
                    error = "claim file unreadable (corrupt)"
                else:
                    # Pending-style JSON: the claimant (attempt
                    # ``attempts + 1``) died before writing its lease.
                    attempts = int(lease.get("attempts", 0)) + 1
                    error = "claim interrupted before its lease was written"
            else:
                if lease.get("deadline", 0.0) > now:
                    continue
                attempts = int(lease.get("attempts", 1))
                error = "lease expired (worker died or stalled)"
            if attempts >= self.max_attempts:
                self._quarantine(
                    task_id, attempts=attempts, error=error,
                    owner="reclaimer", from_state="claimed",
                )
                reclaimed.append(task_id)
                continue
            pending_path = self._path("pending", task_id)
            # Retry state goes into the claim file *before* the rename
            # (the same single-visible-transition discipline as fail()).
            _atomic_write_json(claimed_path, {
                "attempts": attempts,
                "not_before": now + self._backoff(attempts),
                "last_error": error,
            })
            try:
                os.rename(claimed_path, pending_path)
            except OSError:
                continue  # another supervisor won
            reclaimed.append(task_id)
        return reclaimed

    def speculate(
        self, task_id: str, now: Optional[float] = None
    ) -> bool:
        """Re-dispatch a straggler whose lease is still live.

        Unlike :meth:`reclaim_expired` this does not count as a
        failure: ``attempts`` is preserved and the task is immediately
        claimable.  The original execution keeps running; whichever
        finishes first writes ``done``, and the loser's identical
        result deduplicates in the store.
        """
        if now is None:
            now = time.time()
        claimed_path = self._path("claimed", task_id)
        lease = _read_json(claimed_path)
        if lease is None or self._path("done", task_id).is_file():
            return False
        pending_path = self._path("pending", task_id)
        # Re-dispatch state goes into the claim file *before* the
        # rename (the same single-visible-transition discipline as
        # fail()): the pending file is born claimable at the preserved
        # attempt count, never briefly holding the stale lease.
        _atomic_write_json(claimed_path, {
            "attempts": max(0, int(lease.get("attempts", 1)) - 1),
            "not_before": now,
            "speculative": True,
        })
        try:
            os.rename(claimed_path, pending_path)
        except OSError:
            return False
        return True

    # -- introspection ---------------------------------------------------

    def done_record(self, task_id: str) -> Optional[Dict[str, Any]]:
        """The ``done`` record for a task (None if not finished)."""
        return _read_json(self._path("done", task_id))

    def poison_record(self, task_id: str) -> Optional[Dict[str, Any]]:
        """The poison record for a task (None if not quarantined)."""
        return _read_json(self._path("poison", task_id))

    def status(self) -> QueueStatus:
        """Census all five state dirs (see :class:`QueueStatus`)."""
        leases = []
        for task_id in self._ids("claimed"):
            lease = _read_json(self._path("claimed", task_id)) or {}
            lease["task_id"] = task_id
            leases.append(lease)
        poison = []
        for task_id in self._ids("poison"):
            entry = _read_json(self._path("poison", task_id)) or {}
            entry["task_id"] = task_id
            poison.append(entry)
        return QueueStatus(
            pending=len(self._ids("pending")),
            claimed=len(leases),
            done=len(self._ids("done")),
            poisoned=len(poison),
            total_tasks=len(self._ids("tasks")),
            leases=leases,
            poison=poison,
        )

    def drain(self) -> Dict[str, int]:
        """Cancel all unfinished work; returns removal counts.

        Removes ``pending`` and ``claimed`` markers so no worker can
        pick anything else up (in-flight simulations finish but their
        ``complete`` finds the claim gone, which is tolerated).
        Terminal state — ``done``, ``poison``, and the immutable task
        bodies — is kept for inspection.
        """
        removed = {"pending": 0, "claimed": 0}
        for state in removed:
            for task_id in self._ids(state):
                try:
                    self._path(state, task_id).unlink()
                    removed[state] += 1
                except OSError:
                    pass
        return removed
