"""Performance metrics: weighted speedups, geomeans, scenario metrics.

Beyond the paper's IPC-style metrics, this module carries the
security-relevant pair every co-located scenario reports:
:func:`victim_slowdown` (how much the attacker degrades the benign
cores, against a baseline run where the attacker cores sit idle) and
:func:`attacker_act_rate` (how many activations per cycle the attacker
actually lands through the defended controller).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple

from .stats import SimResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; every value must be positive."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(value <= 0 for value in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalized_weighted_speedup(
    result: SimResult, baseline: SimResult
) -> float:
    """Per-core rate relative to the baseline run, averaged (Section III-A).

    In rate mode every core runs the same trace, so this is the paper's
    normalized weighted speedup with the baseline's own cores as the
    single-program reference.
    """
    rates = result.core_rates()
    base_rates = baseline.core_rates()
    if len(rates) != len(base_rates):
        raise ValueError("core counts differ between runs")
    ratios = [
        rate / base if base > 0 else 0.0
        for rate, base in zip(rates, base_rates)
    ]
    return sum(ratios) / len(ratios)


def geomean_over_workloads(per_workload: Dict[str, float]) -> float:
    return geomean(per_workload.values())


def victim_slowdown(
    result: SimResult,
    baseline: SimResult,
    attacker_cores: Sequence[int],
) -> float:
    """Mean slowdown of the non-attacker cores vs. the baseline run.

    ``baseline`` is the same scenario with the attacker cores idle, so
    per-core rates are directly comparable.  Each victim contributes
    ``baseline_rate / attacked_rate`` (1.0 = unaffected, 2.0 = twice as
    slow); the mean over victims is the scenario's headline slowdown.
    """
    rates = result.core_rates()
    base_rates = baseline.core_rates()
    if len(rates) != len(base_rates):
        raise ValueError("core counts differ between runs")
    attackers = set(attacker_cores)
    victims = [core for core in range(len(rates)) if core not in attackers]
    if not victims:
        raise ValueError("scenario has no victim cores")
    slowdowns = [
        base_rates[core] / rates[core] if rates[core] > 0 else float("inf")
        for core in victims
    ]
    return sum(slowdowns) / len(slowdowns)


def stalled_victim_cores(
    result: SimResult, attacker_cores: Sequence[int]
) -> Tuple[int, ...]:
    """Victim cores that made no progress under attack (rate == 0).

    A stalled victim makes :func:`victim_slowdown` infinite — which is
    honest arithmetic but not valid JSON.  Serialization layers emit
    the slowdown as ``null`` plus this explicit core list instead
    (:meth:`repro.scenarios.run.ScenarioReport.to_json`), and the
    result store rejects non-finite floats outright.
    """
    attackers = set(attacker_cores)
    rates = result.core_rates()
    return tuple(
        core for core in range(len(rates))
        if core not in attackers and rates[core] == 0.0
    )


def attacker_act_rate(
    result: SimResult, attacker_cores: Sequence[int]
) -> float:
    """Attacker-attributed demand ACTs per elapsed DRAM cycle.

    This is the rate the attacker achieves *through* the defended
    controller — mitigations, RFMs and queue contention all depress it
    — summed over the attacker cores.  Multiply by the DRAM clock for
    ACTs per second, or by tREFI cycles for ACTs per refresh interval.
    """
    if not result.core_demand_acts:
        raise ValueError("run carries no per-core ACT attribution")
    if not result.elapsed_cycles:
        return 0.0
    acts = sum(result.core_demand_acts[core] for core in attacker_cores)
    return acts / result.elapsed_cycles


def relative_acts(result: SimResult, baseline: SimResult) -> Dict[str, float]:
    """Demand / mitigative ACTs normalized to the baseline's total ACTs
    (the Fig 14 metric)."""
    base_total = baseline.counts.total_acts
    if base_total == 0:
        raise ValueError("baseline performed no activations")
    return {
        "demand": result.counts.demand_acts / base_total,
        "mitigative": result.counts.mitigative_acts / base_total,
        "total": result.counts.total_acts / base_total,
    }
