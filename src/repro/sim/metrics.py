"""Performance metrics: weighted speedup and geometric means."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

from .stats import SimResult


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; every value must be positive."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(value <= 0 for value in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def normalized_weighted_speedup(
    result: SimResult, baseline: SimResult
) -> float:
    """Per-core rate relative to the baseline run, averaged (Section III-A).

    In rate mode every core runs the same trace, so this is the paper's
    normalized weighted speedup with the baseline's own cores as the
    single-program reference.
    """
    rates = result.core_rates()
    base_rates = baseline.core_rates()
    if len(rates) != len(base_rates):
        raise ValueError("core counts differ between runs")
    ratios = [
        rate / base if base > 0 else 0.0
        for rate, base in zip(rates, base_rates)
    ]
    return sum(ratios) / len(ratios)


def geomean_over_workloads(per_workload: Dict[str, float]) -> float:
    return geomean(per_workload.values())


def relative_acts(result: SimResult, baseline: SimResult) -> Dict[str, float]:
    """Demand / mitigative ACTs normalized to the baseline's total ACTs
    (the Fig 14 metric)."""
    base_total = baseline.counts.total_acts
    if base_total == 0:
        raise ValueError("baseline performed no activations")
    return {
        "demand": result.counts.demand_acts / base_total,
        "mitigative": result.counts.mitigative_acts / base_total,
        "total": result.counts.total_acts / base_total,
    }
