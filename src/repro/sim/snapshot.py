"""Engine checkpointing: snapshot/restore of a mid-run simulation.

A snapshot captures every piece of *mutable* run state in either engine
— the event heap, sequence counter, core issue/retire bookkeeping,
controller command tallies, per-bank DRAM and queue state, refresh
schedulers and the mitigation trackers (including their RNG streams) —
so that restoring it into a simulator built from the *same*
configuration and traces reproduces the remainder of the run bit for
bit.  ``tests/test_snapshot.py`` pins resume-equals-straight-run
identity across the workload x defense x engine matrix.

Design rules:

* **Configuration is not captured.**  Timings, traces, mappers, kernel
  dispatch tables and scheme wiring are construction-time constants; a
  snapshot is only valid for a simulator constructed identically (the
  :attr:`EngineSnapshot.engine` tag guards against crossing engines).
* **Restore mutates containers in place.**  Controller kernels and
  tracker closures captured references to queues, tables and counters
  at construction; rebinding those containers would silently split the
  state the kernels mutate from the state the simulator reads.
* **Observer hooks are exempt.**  Lazy ``Bank`` hook lists belong to
  whoever registered them (the invariant monitor, tests); snapshots
  neither capture nor clear them, so a monitor stays attached across a
  restore.
* **Queued requests are shared, not copied.**  ``InFlightRequest``
  objects are never mutated after construction, so the queue snapshot
  is a tuple of the live references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

_COUNT_FIELDS = (
    "demand_acts",
    "mitigative_acts",
    "precharges",
    "reads",
    "writes",
    "refreshes",
    "rfms",
)

_BOOK_FIELDS = (
    "pending_mitigations",
    "acts_since_rfm",
    "busy_until",
    "act_cycle",
    "columns_since_act",
    "last_use",
)

_BANK_FIELDS = ("open_row", "act_cycle", "_ready_act", "_ready_pre",
                "_ready_col")

_CORE_FIELDS = ("index", "outstanding", "retired", "stalled_on_mlp",
                "finish_cycle")

_REFRESH_FIELDS = ("_next_due", "_postponed", "_issued")

_STAT_FIELDS = ("row_hits", "row_misses", "row_conflicts",
                "rfm_mitigations", "tmro_closures")


@dataclass(frozen=True, slots=True)
class ControllerSnapshot:
    """Mutable state of one :class:`ChannelController` and its banks."""

    counts: Tuple[int, ...]
    stats: Tuple[int, ...]
    core_demand_acts: Tuple[Tuple[int, int], ...]
    banks: Tuple[tuple, ...]
    books: Tuple[tuple, ...]
    queues: Tuple[tuple, ...]
    refresh: Tuple[tuple, ...]
    trackers: Tuple[object, ...]


@dataclass(frozen=True, slots=True)
class EngineSnapshot:
    """Complete mutable state of a mid-run simulation engine."""

    engine: str                       # "fast" | "reference"
    now: int
    seq: int
    started: bool
    remaining: int
    pending_done: int
    heap: tuple
    bank_wake: Optional[tuple]        # fast engine only
    cores: Tuple[tuple, ...]
    controllers: Tuple[ControllerSnapshot, ...]


def _capture_controller(controller) -> ControllerSnapshot:
    counts = controller.counts
    return ControllerSnapshot(
        counts=tuple(getattr(counts, f) for f in _COUNT_FIELDS),
        stats=tuple(getattr(controller, f) for f in _STAT_FIELDS),
        core_demand_acts=tuple(sorted(controller.core_demand_acts.items())),
        banks=tuple(
            tuple(getattr(bank, f) for f in _BANK_FIELDS)
            for bank in controller.banks
        ),
        books=tuple(
            tuple(getattr(book, f) for f in _BOOK_FIELDS)
            for book in controller.state
        ),
        queues=tuple(tuple(book.queue) for book in controller.state),
        refresh=tuple(
            tuple(getattr(sched, f) for f in _REFRESH_FIELDS)
            for sched in controller.refresh
        ),
        trackers=tuple(
            tracker.snapshot() for tracker in controller.scheme.trackers
        ),
    )


def _restore_controller(controller, snap: ControllerSnapshot) -> None:
    counts = controller.counts
    for name, value in zip(_COUNT_FIELDS, snap.counts):
        setattr(counts, name, value)
    for name, value in zip(_STAT_FIELDS, snap.stats):
        setattr(controller, name, value)
    controller.core_demand_acts.clear()
    controller.core_demand_acts.update(snap.core_demand_acts)
    for bank, values in zip(controller.banks, snap.banks):
        for name, value in zip(_BANK_FIELDS, values):
            setattr(bank, name, value)
    for book, values, queue in zip(controller.state, snap.books, snap.queues):
        for name, value in zip(_BOOK_FIELDS, values):
            setattr(book, name, value)
        book.queue[:] = queue
    for sched, values in zip(controller.refresh, snap.refresh):
        for name, value in zip(_REFRESH_FIELDS, values):
            setattr(sched, name, value)
    for tracker, state in zip(controller.scheme.trackers, snap.trackers):
        tracker.restore(state)


def capture(sim) -> EngineSnapshot:
    """Snapshot a simulator's full mutable run state.

    Works for both engines; the snapshot records which one produced it.
    """
    bank_wake = getattr(sim, "_bank_wake", None)
    return EngineSnapshot(
        engine="reference" if bank_wake is None else "fast",
        now=sim._now,
        seq=sim._seq,
        started=sim._started,
        remaining=sim._remaining,
        pending_done=sim._pending_done,
        heap=tuple(sim._heap),
        bank_wake=None if bank_wake is None else tuple(bank_wake),
        cores=tuple(
            tuple(getattr(core, f) for f in _CORE_FIELDS)
            for core in sim.cores
        ),
        controllers=tuple(
            _capture_controller(controller) for controller in sim.controllers
        ),
    )


def restore(sim, snap: EngineSnapshot) -> None:
    """Write a snapshot back into a compatibly-constructed simulator."""
    bank_wake = getattr(sim, "_bank_wake", None)
    engine = "reference" if bank_wake is None else "fast"
    if engine != snap.engine:
        raise ValueError(
            f"cannot restore a {snap.engine!r} snapshot into a "
            f"{engine!r} engine"
        )
    if len(snap.cores) != len(sim.cores) or len(snap.controllers) != len(
        sim.controllers
    ):
        raise ValueError("snapshot topology does not match the simulator")
    sim._now = snap.now
    sim._seq = snap.seq
    sim._started = snap.started
    sim._remaining = snap.remaining
    sim._pending_done = snap.pending_done
    sim._heap[:] = snap.heap
    if bank_wake is not None:
        bank_wake[:] = snap.bank_wake
    for core, values in zip(sim.cores, snap.cores):
        for name, value in zip(_CORE_FIELDS, values):
            setattr(core, name, value)
    for controller, ctrl_snap in zip(sim.controllers, snap.controllers):
        _restore_controller(controller, ctrl_snap)


def state_fingerprint(sim) -> tuple:
    """Cheap engine-independent digest of observable run state.

    Used by the fuzzer's divergence bisection to localize *where* two
    engines' runs first disagree: at any stop cycle up to which both
    engines have processed every event, the fingerprints should match.
    Deliberately excludes the event heap, sequence counter and bank
    wakeup cache — those are engine-internal representation, not
    observable behavior.
    """
    controllers = []
    for controller in sim.controllers:
        counts = controller.counts
        controllers.append((
            tuple(getattr(counts, f) for f in _COUNT_FIELDS),
            tuple(getattr(controller, f) for f in _STAT_FIELDS),
            tuple(sorted(controller.core_demand_acts.items())),
            tuple(
                (bank.open_row, bank.act_cycle) for bank in controller.banks
            ),
            tuple(
                (book.pending_mitigations, book.acts_since_rfm,
                 len(book.queue))
                for book in controller.state
            ),
        ))
    return (
        tuple(
            (core.index, core.outstanding, core.retired)
            for core in sim.cores
        ),
        tuple(controllers),
    )
