"""Simulation statistics and the DRAM energy model (Section VI-E)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..dram.commands import CommandCounts

#: Energy-model constants in abstract units, calibrated so activations
#: account for roughly 11% of baseline DRAM energy on the mixed workload
#: set (Section VI-E).  E_ACT covers an ACT+PRE pair; E_COL one burst;
#: P_BG is channel background power per DRAM cycle.
E_ACT = 1.0
E_COL = 0.9
P_BG_PER_CYCLE = 0.2
E_REF = 6.0
E_RFM = 3.0


@dataclass(slots=True)
class EnergyBreakdown:
    """DRAM energy split by source."""

    activation: float
    column: float
    background: float
    refresh: float

    @property
    def total(self) -> float:
        return self.activation + self.column + self.background + self.refresh

    @property
    def activation_share(self) -> float:
        return self.activation / self.total if self.total else 0.0


def energy_of(counts: CommandCounts, elapsed_cycles: int) -> EnergyBreakdown:
    """Apply the calibrated energy model to a run's command counts."""
    return EnergyBreakdown(
        activation=E_ACT * counts.total_acts,
        column=E_COL * (counts.reads + counts.writes),
        background=P_BG_PER_CYCLE * elapsed_cycles,
        refresh=E_REF * counts.refreshes + E_RFM * counts.rfms,
    )


@dataclass(slots=True)
class SimResult:
    """Outcome of one system simulation."""

    elapsed_cycles: int
    core_cycles: List[int]            # per-core finish cycle
    core_requests: List[int]          # per-core retired requests
    counts: CommandCounts = field(default_factory=CommandCounts)
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    rfm_mitigations: int = 0
    tmro_closures: int = 0
    #: Demand ACTs attributed to the core that triggered them (empty for
    #: results predating the scenario subsystem).  Scenario metrics read
    #: this to report attacker activation rates next to victim slowdown.
    core_demand_acts: List[int] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    def core_rates(self) -> List[float]:
        """Per-core throughput (requests per cycle)."""
        return [
            requests / cycles if cycles else 0.0
            for requests, cycles in zip(self.core_requests, self.core_cycles)
        ]

    def core_act_rates(self) -> List[float]:
        """Per-core demand ACTs per elapsed cycle (whole-run average)."""
        if not self.core_demand_acts or not self.elapsed_cycles:
            return [0.0] * len(self.core_requests)
        return [acts / self.elapsed_cycles for acts in self.core_demand_acts]

    def energy(self) -> EnergyBreakdown:
        return energy_of(self.counts, self.elapsed_cycles)

    def to_json(self) -> Dict[str, object]:
        """Exact (all-int) serialization for the result store.

        The payload is a pure function of the simulation — no
        timestamps, hosts or derived floats — so two runs of the same
        recipe produce byte-identical canonical JSON.  That is what
        lets the distributed sweep layer deduplicate retried tasks by
        content key and lets chaos tests assert distributed blobs are
        bit-identical to a serial run's.
        """
        return {
            "elapsed_cycles": self.elapsed_cycles,
            "core_cycles": list(self.core_cycles),
            "core_requests": list(self.core_requests),
            "counts": self.counts.to_json(),
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "rfm_mitigations": self.rfm_mitigations,
            "tmro_closures": self.tmro_closures,
            "core_demand_acts": list(self.core_demand_acts),
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "SimResult":
        """Inverse of :meth:`to_json`; bit-exact round trip."""
        return cls(
            elapsed_cycles=int(data["elapsed_cycles"]),
            core_cycles=[int(c) for c in data["core_cycles"]],
            core_requests=[int(c) for c in data["core_requests"]],
            counts=CommandCounts.from_json(data["counts"]),
            row_hits=int(data["row_hits"]),
            row_misses=int(data["row_misses"]),
            row_conflicts=int(data["row_conflicts"]),
            rfm_mitigations=int(data["rfm_mitigations"]),
            tmro_closures=int(data["tmro_closures"]),
            core_demand_acts=[int(c) for c in data["core_demand_acts"]],
        )

    def summary(self) -> Dict[str, float]:
        return {
            "elapsed_cycles": float(self.elapsed_cycles),
            "hit_rate": self.hit_rate,
            "demand_acts": float(self.counts.demand_acts),
            "mitigative_acts": float(self.counts.mitigative_acts),
            "refreshes": float(self.counts.refreshes),
            "rfms": float(self.counts.rfms),
            "energy": self.energy().total,
        }
