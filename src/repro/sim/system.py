"""Discrete-event system simulator: cores -> controllers -> banks.

Wires the trace-driven cores to one :class:`ChannelController` per
channel and runs an event loop at DRAM-clock granularity.  Three event
kinds circulate:

* ``core`` — a core tries to issue its next request;
* ``bank`` — a bank may have work (demand, refresh, RFM, mitigation);
* ``done`` — a request's data returned, the core retires it.

The run ends when every core has retired its whole trace; open rows are
then flushed so ImPress-P records their final EACTs.

**Hot-path engineering** (see ``docs/performance.md``):

* Events are single packed ints — ``(cycle, seq, kind, payload)``
  squeezed into one integer whose ordering matches the old 4-tuple's.
  Each heap sift does one int comparison instead of an element-wise
  tuple comparison, and no per-event tuple is allocated (the packed
  values exceed one machine word, but a single bignum compare still
  beats tuple protocol dispatch).
* Bank wakeups are deduplicated: at most one *live* heap entry exists
  per bank at any time (``_bank_wake`` tracks its cycle); redundant
  same-cycle or later wakeups are dropped at push time and superseded
  entries are skipped at pop time.  The original engine pushed a new
  wakeup chain per enqueue, which grew the event count ~40x beyond the
  useful work.
* Traces are pre-compiled to ``(channel, bank, row)`` arrays once per
  ``(trace, mapper)`` via :mod:`repro.workloads.compiled`, so the issue
  path does list indexing instead of per-request address arithmetic.

Behavior is bit-identical to :class:`repro.sim.reference.ReferenceSimulator`
(the preserved original loop); ``tests/test_engine_equivalence.py``
enforces it across seeded workload/defense matrices.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from ..core.mitigation import MitigationScheme
from ..dram.commands import CommandCounts
from ..memctrl.controller import BANK_QUEUE_CAPACITY, ChannelController
from ..memctrl.request import InFlightRequest
from ..workloads.compiled import CompiledTrace, compile_traces, mapper_key
from ..workloads.trace import Trace
from .config import DefenseConfig, SystemConfig
from .core import CoreState
from .stats import SimResult

#: Retry delay when a core finds its target bank queue full.
QUEUE_RETRY_CYCLES = 16

EVENT_CORE = 0
EVENT_BANK = 1
EVENT_DONE = 2

# Packed-event layout, most-significant first: cycle | seq | kind | payload.
# Heap order on the packed int therefore equals order on the old
# (cycle, seq, kind, payload) tuple, because seq is globally unique.
_SEQ_BITS = 44                      # > 17e12 events; far beyond any run
_PAYLOAD_BITS = 16
_KIND_SHIFT = _PAYLOAD_BITS
_LOW_BITS = _PAYLOAD_BITS + 2       # kind needs 2 bits
_CYCLE_SHIFT = _SEQ_BITS + _LOW_BITS
_PAYLOAD_MASK = (1 << _PAYLOAD_BITS) - 1
_CORE_TAG = EVENT_CORE << _KIND_SHIFT
_BANK_TAG = EVENT_BANK << _KIND_SHIFT
_DONE_TAG = EVENT_DONE << _KIND_SHIFT
#: Packed-event threshold that no real event reaches (cycles stay below
#: 2**34, so packed values stay below 2**96).  Used as the "no stop
#: cycle" sentinel so the main loop's stop check is always one plain
#: int comparison.
_NO_STOP = 1 << 120


class SystemSimulator:
    """One simulation run of traces against a defense configuration."""

    __slots__ = (
        "system", "defense", "mapper", "controllers", "cores",
        "_compiled", "_heap", "_seq", "_now", "_started", "_remaining",
        "_pending_done", "_bank_wake", "_service_fns", "_local_banks",
        "_chan_states",
    )

    def __init__(
        self,
        system: SystemConfig,
        traces: Optional[Sequence[Trace]] = None,
        defense: Optional[DefenseConfig] = None,
        tmro_ns: Optional[float] = None,
        compiled: Optional[Sequence[CompiledTrace]] = None,
    ) -> None:
        if traces is None:
            if compiled is None:
                raise ValueError("need traces or compiled traces")
            traces = [entry.trace for entry in compiled]
        elif compiled is not None and any(
            entry.trace is not trace
            for entry, trace in zip(compiled, traces)
        ):
            raise ValueError(
                "compiled traces do not correspond to the traces argument"
            )
        if len(traces) != system.n_cores:
            raise ValueError("need one trace per core")
        self.system = system
        self.defense = defense or DefenseConfig()
        self.mapper = system.mapper()
        if compiled is None:
            compiled = compile_traces(traces, self.mapper)
        elif any(
            entry.key != mapper_key(self.mapper) for entry in compiled
        ):
            raise ValueError("compiled traces were built for another mapper")
        if len(compiled) != system.n_cores:
            raise ValueError("need one compiled trace per core")
        total_banks = system.channels * system.banks_per_channel
        if total_banks > _PAYLOAD_MASK or system.n_cores > _PAYLOAD_MASK:
            raise ValueError("bank/core count exceeds event payload range")
        self._compiled: List[CompiledTrace] = list(compiled)
        timings = system.timings
        tmro_cycles = (
            timings.clock.cycles(tmro_ns) if tmro_ns is not None else None
        )
        self.controllers: List[ChannelController] = []
        for _channel in range(system.channels):
            scheme: MitigationScheme = self.defense.build_scheme(
                timings, system.banks_per_channel
            )
            self.controllers.append(
                ChannelController(
                    timings=timings,
                    num_banks=system.banks_per_channel,
                    scheme=scheme,
                    use_rfm=self.defense.uses_rfm,
                    rfmth=self.defense.effective_rfmth(),
                    tmro_cycles=tmro_cycles
                    if tmro_cycles is not None
                    else self.defense.express_tmro_cycles(timings),
                    mop_burst_lines=system.mop_burst_lines,
                    idle_close_cycles=system.idle_close_cycles,
                )
            )
        self.cores = [
            CoreState(core_id=i, trace=trace, mlp=system.mlp)
            for i, trace in enumerate(traces)
        ]
        self._heap: List[int] = []
        self._seq = 0
        self._now = 0
        self._started = False
        self._remaining = 0
        self._pending_done = 0
        #: Cycle of each bank's single live heap entry, -1 when none.
        self._bank_wake: List[int] = [-1] * total_banks
        # Flat-bank dispatch tables: the event loop indexes a bound
        # ``service`` method and a local bank id instead of doing a
        # div/mod + controller lookup per bank event.
        per = system.banks_per_channel
        self._service_fns = [
            self.controllers[flat // per].service for flat in range(total_banks)
        ]
        self._local_banks = [flat % per for flat in range(total_banks)]
        #: Per-channel bank bookkeeping lists for direct queue access on
        #: the issue path (skips can_accept/enqueue re-validation).
        self._chan_states = [
            controller.state for controller in self.controllers
        ]

    # -- core issue logic -------------------------------------------------

    def _try_issue(self, core: CoreState, cycle: int) -> None:
        compiled = self._compiled[core.core_id]
        banks = compiled.banks
        channels = compiled.channels
        rows = compiled.rows
        columns = compiled.columns
        flats = compiled.flat_banks
        writes = compiled.is_write
        gaps = compiled.gaps
        length = compiled.length
        chan_states = self._chan_states
        heap = self._heap
        push = heapq.heappush
        bank_wake = self._bank_wake
        core_id = core.core_id
        mlp = core.mlp
        while core.index < length and core.outstanding < mlp:
            index = core.index
            bank = banks[index]
            channel = channels[index]
            # Direct queue access: the capacity check here is the same
            # one can_accept/enqueue would repeat.
            book = chan_states[channel][bank]
            queue = book.queue
            if len(queue) >= BANK_QUEUE_CAPACITY:
                self._seq += 1
                push(
                    heap,
                    (((cycle + QUEUE_RETRY_CYCLES) << _SEQ_BITS | self._seq)
                     << _LOW_BITS) | _CORE_TAG | core_id,
                )
                return
            queue.append(
                InFlightRequest(
                    core_id=core_id,
                    is_write=writes[index],
                    enqueue_cycle=cycle,
                    channel=channel,
                    bank=bank,
                    row=rows[index],
                    column=columns[index],
                )
            )
            # Wake the bank when it can actually serve: an arrival at a
            # busy bank would only get a busy-return from service(), so
            # schedule straight for busy_until instead of polling now.
            wake_at = book.busy_until
            if wake_at < cycle:
                wake_at = cycle
            flat = flats[index]
            wake = bank_wake[flat]
            if wake < 0 or wake_at < wake:
                bank_wake[flat] = wake_at
                self._seq += 1
                push(
                    heap,
                    ((wake_at << _SEQ_BITS | self._seq) << _LOW_BITS)
                    | _BANK_TAG | flat,
                )
            core.index = index + 1
            core.outstanding += 1
            if core.outstanding >= mlp:
                core.stalled_on_mlp = True
                return
            if core.index < length:
                gap = gaps[core.index]
                if gap > 0:
                    self._seq += 1
                    push(
                        heap,
                        (((cycle + gap) << _SEQ_BITS | self._seq)
                         << _LOW_BITS) | _CORE_TAG | core_id,
                    )
                    return
                # gap == 0: keep issuing at this cycle.

    # -- main loop ----------------------------------------------------------

    def _prime(self) -> None:
        """Seed the heap with each core's first issue event (run once)."""
        self._started = True
        heap = self._heap
        push = heapq.heappush
        compiled = self._compiled
        for core in self.cores:
            if len(core.trace) == 0:
                core.finish_cycle = 0
                continue
            self._seq += 1
            push(
                heap,
                ((compiled[core.core_id].gaps[0] << _SEQ_BITS | self._seq)
                 << _LOW_BITS) | _CORE_TAG | core.core_id,
            )
        self._remaining = sum(len(core.trace) for core in self.cores)

    @property
    def now(self) -> int:
        """Cycle of the most recently processed event."""
        return self._now

    @property
    def done(self) -> bool:
        """True once every request has been issued and retired."""
        return (
            self._started
            and self._remaining == 0
            and self._pending_done == 0
        )

    def run_until(
        self,
        stop_cycle: Optional[int] = None,
        max_cycles: int = 1 << 34,
    ) -> bool:
        """Process every event up to and including ``stop_cycle``.

        ``None`` runs to completion.  Returns True when the whole run is
        finished (all requests issued and retired).  The loop is exactly
        the original ``run`` loop plus one int comparison against the
        pre-packed stop threshold, so behavior at any stop point is a
        prefix of the straight run — which is what makes checkpoints and
        divergence bisection bit-faithful.
        """
        if not self._started:
            self._prime()
        heap = self._heap
        push = heapq.heappush
        pop = heapq.heappop
        cores = self.cores
        compiled = self._compiled
        bank_wake = self._bank_wake
        service_fns = self._service_fns
        local_banks = self._local_banks
        extra = self.system.extra_latency_cycles
        threshold = (
            ((stop_cycle + 1) << _CYCLE_SHIFT)
            if stop_cycle is not None
            else _NO_STOP
        )
        remaining = self._remaining
        pending_done = self._pending_done
        cycle = self._now
        while (remaining > 0 or pending_done > 0) and heap:
            if heap[0] >= threshold:
                break
            event = pop(heap)
            payload = event & _PAYLOAD_MASK
            kind = (event >> _KIND_SHIFT) & 3
            cycle = event >> _CYCLE_SHIFT
            if cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({remaining} requests outstanding)"
                )
            if kind == EVENT_BANK:
                if bank_wake[payload] != cycle:
                    continue    # superseded by an earlier wakeup
                bank_wake[payload] = -1
                result = service_fns[payload](local_banks[payload], cycle)
                completions = result.completions
                if completions:
                    for completion in completions:
                        self._seq += 1
                        push(
                            heap,
                            (((completion.cycle + extra) << _SEQ_BITS
                              | self._seq) << _LOW_BITS)
                            | _DONE_TAG | completion.core_id,
                        )
                    remaining -= len(completions)
                    pending_done += len(completions)
                wake = result.next_wake
                if wake is not None and wake >= cycle:
                    if wake <= cycle:
                        wake = cycle + 1
                    # bank_wake[payload] is -1 here: it was cleared at
                    # pop and neither service() nor the DONE pushes
                    # touch it, so this push is never superseded.
                    bank_wake[payload] = wake
                    self._seq += 1
                    push(
                        heap,
                        ((wake << _SEQ_BITS | self._seq) << _LOW_BITS)
                        | _BANK_TAG | payload,
                    )
            elif kind == EVENT_DONE:
                pending_done -= 1
                core = cores[payload]
                core.retire(cycle)
                if core.stalled_on_mlp:
                    core.stalled_on_mlp = False
                    if core.index < compiled[payload].length:
                        self._try_issue(core, cycle)
            else:  # EVENT_CORE
                self._try_issue(cores[payload], cycle)
        self._now = cycle
        self._remaining = remaining
        self._pending_done = pending_done
        return remaining == 0 and pending_done == 0

    def run(self, max_cycles: int = 1 << 34) -> SimResult:
        """Run every core's trace to completion; returns the SimResult."""
        self.run_until(None, max_cycles)
        if self._remaining > 0:
            raise RuntimeError("event heap drained with work remaining")
        return self.finish()

    def finish(self) -> SimResult:
        """Flush open rows and collect the result (run must be done)."""
        end_cycle = self._now
        for controller in self.controllers:
            controller.flush_open_rows(end_cycle + 1)
        return self._collect(end_cycle)

    # -- checkpointing ------------------------------------------------------

    def snapshot(self):
        """Full mutable run state; see :mod:`repro.sim.snapshot`."""
        from .snapshot import capture

        return capture(self)

    def restore(self, snap) -> None:
        """Restore a :meth:`snapshot` into this (identically built) run."""
        from .snapshot import restore

        restore(self, snap)

    def _collect(self, end_cycle: int) -> SimResult:
        counts = CommandCounts()
        hits = misses = conflicts = rfm_mitigations = tmro_closures = 0
        core_acts = [0] * len(self.cores)
        for controller in self.controllers:
            counts = counts.merged_with(controller.counts)
            hits += controller.row_hits
            misses += controller.row_misses
            conflicts += controller.row_conflicts
            rfm_mitigations += controller.rfm_mitigations
            tmro_closures += controller.tmro_closures
            for core_id, acts in controller.core_demand_acts.items():
                core_acts[core_id] += acts
        return SimResult(
            elapsed_cycles=end_cycle,
            core_cycles=[
                core.finish_cycle if core.finish_cycle is not None else end_cycle
                for core in self.cores
            ],
            core_requests=[core.retired for core in self.cores],
            counts=counts,
            row_hits=hits,
            row_misses=misses,
            row_conflicts=conflicts,
            rfm_mitigations=rfm_mitigations,
            tmro_closures=tmro_closures,
            core_demand_acts=core_acts,
        )


#: Engine tiers :func:`simulate_workload` dispatches between.
ENGINE_NAMES = ("reference", "fast", "batch")


def simulate_workload(
    name,
    defense: Optional[DefenseConfig] = None,
    system: Optional[SystemConfig] = None,
    n_requests_per_core: int = 2000,
    tmro_ns: Optional[float] = None,
    seed: int = 0,
    engine: str = "fast",
) -> SimResult:
    """Convenience wrapper: one run of a workload against a defense.

    ``name`` is either a named rate-mode workload (a string — the
    legacy single-workload path) or a heterogeneous per-core source
    tuple (:data:`repro.workloads.sources.CoreSources`, one entry per
    core — the scenario path).  Both forms are hashable, so both key the
    process-local compiled-trace cache and the
    :class:`~repro.experiments.common.SweepRunner` run cache directly;
    consecutive calls with the same recipe (a defense sweep) share one
    compiled trace set.

    ``engine`` selects the tier: ``"fast"`` (default, the oracle-pinned
    event engine), ``"reference"`` (the preserved original loop), or
    ``"batch"`` (the NumPy batch tier — a single point degenerates to
    one fast-engine run, so this mainly validates the plumbing; batch
    wins come from :func:`repro.sim.batch.simulate_batch` over grids).
    All three produce bit-identical results; ``"batch"`` raises
    ImportError when NumPy is unavailable — fall back to ``"fast"``.
    """
    from ..workloads.compiled import compiled_point_traces

    system = system or SystemConfig()
    if engine not in ENGINE_NAMES:
        raise ValueError(
            f"unknown engine {engine!r}; choose one of {ENGINE_NAMES}"
        )
    if engine == "batch":
        from .batch import simulate_batch

        return simulate_batch(
            [(name, defense, tmro_ns)],
            system=system,
            n_requests_per_core=n_requests_per_core,
            seed=seed,
        )[0]
    if not isinstance(name, str):
        system.validate_sources(tuple(name))
    compiled = compiled_point_traces(
        name, system.n_cores, n_requests_per_core, seed, system.mapper()
    )
    if engine == "reference":
        from .reference import ReferenceSimulator

        return ReferenceSimulator(
            system,
            [entry.trace for entry in compiled],
            defense,
            tmro_ns=tmro_ns,
        ).run()
    simulator = SystemSimulator(
        system, defense=defense, tmro_ns=tmro_ns, compiled=compiled
    )
    return simulator.run()
