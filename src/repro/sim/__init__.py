"""System simulation: configs, cores, event loop, stats, metrics."""

from .config import (
    DEFAULT_EXPRESS_TMRO_NS,
    SCHEME_NAMES,
    TRACKER_NAMES,
    DefenseConfig,
    SystemConfig,
)
from .batch import BatchStats, batch_available, simulate_batch
from .core import CoreState
from .metrics import (
    geomean,
    geomean_over_workloads,
    normalized_weighted_speedup,
    relative_acts,
)
from .reference import ReferenceSimulator
from .stats import EnergyBreakdown, SimResult, energy_of
from .system import ENGINE_NAMES, SystemSimulator, simulate_workload

__all__ = [
    "ENGINE_NAMES",
    "BatchStats",
    "batch_available",
    "simulate_batch",
    "DEFAULT_EXPRESS_TMRO_NS",
    "SCHEME_NAMES",
    "TRACKER_NAMES",
    "DefenseConfig",
    "SystemConfig",
    "CoreState",
    "geomean",
    "geomean_over_workloads",
    "normalized_weighted_speedup",
    "relative_acts",
    "EnergyBreakdown",
    "SimResult",
    "energy_of",
    "ReferenceSimulator",
    "SystemSimulator",
    "simulate_workload",
]
