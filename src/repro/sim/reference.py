"""Reference simulation engine: the original, unoptimized event loop.

This is a frozen copy of the pre-optimization :class:`SystemSimulator`
event loop (per-request address mapping, one heap entry per wakeup with
a global sequence counter, no bank-wakeup deduplication).  It exists for
two reasons:

* **Equivalence testing** — ``tests/test_engine_equivalence.py`` runs
  seeded workloads through both engines and asserts the
  :class:`~repro.sim.stats.SimResult` fields are bit-identical, which is
  the contract the optimized engine must honor.
* **Benchmarking** — ``repro bench`` times this engine on the canonical
  configuration to report the optimized engine's speedup factor in the
  ``BENCH_*.json`` artifacts.

Do not optimize this module; it is deliberately the slow, obviously
correct formulation.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

from ..core.mitigation import MitigationScheme
from ..dram.commands import CommandCounts
from ..memctrl.controller import ChannelController
from ..memctrl.request import InFlightRequest
from ..workloads.trace import Trace
from .config import DefenseConfig, SystemConfig
from .core import CoreState
from .stats import SimResult

#: Retry delay when a core finds its target bank queue full (must match
#: the optimized engine's value for equivalence to hold).
QUEUE_RETRY_CYCLES = 16

EVENT_CORE = 0
EVENT_BANK = 1
EVENT_DONE = 2


class ReferenceSimulator:
    """The original event loop, preserved verbatim for equivalence runs."""

    __slots__ = (
        "system", "defense", "mapper", "controllers", "cores",
        "_heap", "_seq", "_now", "_started", "_remaining", "_pending_done",
    )

    def __init__(
        self,
        system: SystemConfig,
        traces: Sequence[Trace],
        defense: Optional[DefenseConfig] = None,
        tmro_ns: Optional[float] = None,
    ) -> None:
        if len(traces) != system.n_cores:
            raise ValueError("need one trace per core")
        self.system = system
        self.defense = defense or DefenseConfig()
        self.mapper = system.mapper()
        timings = system.timings
        tmro_cycles = (
            timings.clock.cycles(tmro_ns) if tmro_ns is not None else None
        )
        self.controllers: List[ChannelController] = []
        for _channel in range(system.channels):
            scheme: MitigationScheme = self.defense.build_scheme(
                timings, system.banks_per_channel
            )
            self.controllers.append(
                ChannelController(
                    timings=timings,
                    num_banks=system.banks_per_channel,
                    scheme=scheme,
                    use_rfm=self.defense.uses_rfm,
                    rfmth=self.defense.effective_rfmth(),
                    tmro_cycles=tmro_cycles
                    if tmro_cycles is not None
                    else self.defense.express_tmro_cycles(timings),
                    mop_burst_lines=system.mop_burst_lines,
                    idle_close_cycles=system.idle_close_cycles,
                )
            )
        self.cores = [
            CoreState(core_id=i, trace=trace, mlp=system.mlp)
            for i, trace in enumerate(traces)
        ]
        self._heap: List = []
        # A plain int (not itertools.count) so it can be checkpointed;
        # only the relative order of sequence numbers matters.
        self._seq = 0
        self._now = 0
        self._started = False
        self._remaining = 0
        self._pending_done = 0

    # -- event plumbing ---------------------------------------------------

    def _push(self, cycle: int, kind: int, payload: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (cycle, self._seq, kind, payload))

    def _flat_bank(self, channel: int, bank: int) -> int:
        return channel * self.system.banks_per_channel + bank

    def _unflatten(self, flat: int) -> tuple:
        per = self.system.banks_per_channel
        return flat // per, flat % per

    # -- core issue logic -------------------------------------------------

    def _try_issue(self, core: CoreState, cycle: int) -> None:
        while core.can_issue():
            request = core.trace[core.index]
            mapped = self.mapper.map_address(request.address)
            controller = self.controllers[mapped.channel]
            if not controller.can_accept(mapped.bank):
                self._push(cycle + QUEUE_RETRY_CYCLES, EVENT_CORE, core.core_id)
                return
            controller.enqueue(
                InFlightRequest(
                    core_id=core.core_id,
                    mapped=mapped,
                    is_write=request.is_write,
                    enqueue_cycle=cycle,
                )
            )
            self._push(
                cycle, EVENT_BANK, self._flat_bank(mapped.channel, mapped.bank)
            )
            core.issue()
            if core.outstanding >= core.mlp:
                core.stalled_on_mlp = True
                return
            if not core.exhausted:
                gap = core.trace[core.index].gap_cycles
                if gap > 0:
                    self._push(cycle + gap, EVENT_CORE, core.core_id)
                    return
                # gap == 0: keep issuing at this cycle.

    # -- main loop ----------------------------------------------------------

    def _prime(self) -> None:
        """Seed the heap with each core's first issue event (run once)."""
        self._started = True
        for core in self.cores:
            if len(core.trace) == 0:
                core.finish_cycle = 0
                continue
            first_gap = core.trace[0].gap_cycles
            self._push(first_gap, EVENT_CORE, core.core_id)
        self._remaining = sum(len(core.trace) for core in self.cores)

    @property
    def now(self) -> int:
        """Cycle of the most recently processed event."""
        return self._now

    @property
    def done(self) -> bool:
        """True once every request has been issued and retired."""
        return (
            self._started
            and self._remaining == 0
            and self._pending_done == 0
        )

    def run_until(
        self,
        stop_cycle: Optional[int] = None,
        max_cycles: int = 1 << 34,
    ) -> bool:
        """Process every event up to and including ``stop_cycle``.

        ``None`` runs to completion.  Returns True when the whole run is
        finished.  Mirrors the optimized engine's ``run_until`` so both
        engines can be stepped in lockstep for divergence bisection.
        """
        if not self._started:
            self._prime()
        remaining = self._remaining
        pending_done = self._pending_done
        while (remaining > 0 or pending_done > 0) and self._heap:
            if stop_cycle is not None and self._heap[0][0] > stop_cycle:
                break
            cycle, _seq, kind, payload = heapq.heappop(self._heap)
            if cycle > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({remaining} requests outstanding)"
                )
            self._now = cycle
            if kind == EVENT_CORE:
                self._try_issue(self.cores[payload], cycle)
            elif kind == EVENT_BANK:
                channel, bank = self._unflatten(payload)
                result = self.controllers[channel].service(bank, cycle)
                extra = self.system.extra_latency_cycles
                for completion in result.completions:
                    self._push(
                        completion.cycle + extra, EVENT_DONE, completion.core_id
                    )
                    remaining -= 1
                    pending_done += 1
                if result.next_wake is not None and result.next_wake >= cycle:
                    self._push(
                        max(result.next_wake, cycle + 1), EVENT_BANK, payload
                    )
            else:  # EVENT_DONE
                pending_done -= 1
                core = self.cores[payload]
                core.retire(cycle)
                if core.stalled_on_mlp:
                    core.stalled_on_mlp = False
                    if not core.exhausted:
                        self._try_issue(core, cycle)
        self._remaining = remaining
        self._pending_done = pending_done
        return remaining == 0 and pending_done == 0

    def run(self, max_cycles: int = 1 << 34) -> SimResult:
        """Run every core's trace to completion; returns the SimResult."""
        self.run_until(None, max_cycles)
        if self._remaining > 0:
            raise RuntimeError("event heap drained with work remaining")
        return self.finish()

    def finish(self) -> SimResult:
        """Flush open rows and collect the result (run must be done)."""
        end_cycle = self._now
        for controller in self.controllers:
            controller.flush_open_rows(end_cycle + 1)
        return self._collect(end_cycle)

    # -- checkpointing ------------------------------------------------------

    def snapshot(self):
        """Full mutable run state; see :mod:`repro.sim.snapshot`."""
        from .snapshot import capture

        return capture(self)

    def restore(self, snap) -> None:
        """Restore a :meth:`snapshot` into this (identically built) run."""
        from .snapshot import restore

        restore(self, snap)

    def _collect(self, end_cycle: int) -> SimResult:
        counts = CommandCounts()
        hits = misses = conflicts = rfm_mitigations = tmro_closures = 0
        core_acts = [0] * len(self.cores)
        for controller in self.controllers:
            counts = counts.merged_with(controller.counts)
            hits += controller.row_hits
            misses += controller.row_misses
            conflicts += controller.row_conflicts
            rfm_mitigations += controller.rfm_mitigations
            tmro_closures += controller.tmro_closures
            for core_id, acts in controller.core_demand_acts.items():
                core_acts[core_id] += acts
        return SimResult(
            elapsed_cycles=end_cycle,
            core_cycles=[
                core.finish_cycle if core.finish_cycle is not None else end_cycle
                for core in self.cores
            ],
            core_requests=[core.retired for core in self.cores],
            counts=counts,
            row_hits=hits,
            row_misses=misses,
            row_conflicts=conflicts,
            rfm_mitigations=rfm_mitigations,
            tmro_closures=tmro_closures,
            core_demand_acts=core_acts,
        )
