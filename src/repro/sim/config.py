"""System and defense configurations (Table II plus scheme wiring).

:class:`SystemConfig` is the hardware: cores, banks, mapping, timings.
:class:`DefenseConfig` names a (tracker, Row-Press scheme) pair and
builds correctly-sized tracker instances — entry counts, internal
thresholds, probabilities and RFM rates all follow the sizing rules of
Sections III-B, VI-C and Appendix A.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.mitigation import (
    ExpressScheme,
    ImpressNScheme,
    ImpressPScheme,
    MitigationScheme,
    NoRpScheme,
)
from ..dram.address import MopAddressMapper
from ..dram.timing import CycleTimings, default_cycle_timings
from ..trackers.base import AccountingTracker, Tracker
from ..trackers.dsac import DsacLikeTracker
from ..trackers.graphene import GrapheneTracker
from ..trackers.mint import MintTracker
from ..trackers.mithril import MithrilTracker
from ..trackers.para import ParaTracker, para_probability
from ..trackers.prac import PracTracker
from ..trackers.sizing import (
    graphene_entries,
    graphene_internal_threshold,
    mithril_entries,
)

TRACKER_NAMES = (
    "none", "graphene", "para", "mithril", "mint", "prac", "dsac"
)

#: Row-address space for simulator-built PRAC trackers.  The synthetic
#: workloads map addresses over a much larger row space than one
#: physical bank, so the per-row counter array is sized to cover it; a
#: concrete DDR5 deployment would use
#: :data:`repro.trackers.prac.DEFAULT_ROWS_PER_BANK`.
PRAC_SIM_ROWS_PER_BANK = 1 << 26
SCHEME_NAMES = ("no-rp", "express", "impress-n", "impress-p")

#: ExPress's default tMRO in the paper's scheme comparisons: tRAS + tRC
#: (Section VI-C), which pins its T* to the same value as ImPress-N.
DEFAULT_EXPRESS_TMRO_NS = 36.0 + 48.0


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """The simulated machine (defaults follow Table II, one channel)."""

    n_cores: int = 8
    channels: int = 1
    banks_per_channel: int = 64   # 32 banks x 2 sub-channels (Table II)
    mlp: int = 8
    lines_per_row_group: int = 8
    timings: CycleTimings = field(default_factory=default_cycle_timings)
    #: Minimalist Open-Page: auto-precharge after this many column
    #: accesses to the open row (the 8-line MOP burst of Table II).
    #: None leaves rows open until a conflict/refresh/tMRO closes them.
    mop_burst_lines: int | None = 8
    #: Idle-precharge timer: close a row nobody is hitting after this
    #: many idle cycles (None disables).
    idle_close_cycles: int | None = 150
    #: Round-trip latency outside DRAM (core->LLC->controller->core),
    #: added to every completion; it does not occupy the bank.
    extra_latency_cycles: int = 100

    def __post_init__(self) -> None:
        if self.n_cores < 1 or self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("cores, channels and banks must be positive")
        if self.mlp < 1:
            raise ValueError("mlp must be positive")

    def mapper(self) -> MopAddressMapper:
        return MopAddressMapper(
            channels=self.channels,
            banks_per_channel=self.banks_per_channel,
            lines_per_row_group=self.lines_per_row_group,
        )

    @property
    def total_banks(self) -> int:
        """Banks across all channels (the flat-bank id space)."""
        return self.channels * self.banks_per_channel

    def validate_sources(self, sources) -> None:
        """Check a heterogeneous per-core assignment fits this machine.

        ``sources`` is one trace source per core
        (:data:`repro.workloads.sources.CoreSources`); the count must
        match ``n_cores`` and any source pinned to a (channel, bank) —
        attackers — must target hardware that exists.  Duck-typed via
        ``validate_for`` so this layer needs no workload imports.
        """
        if len(sources) != self.n_cores:
            raise ValueError(
                f"need one trace source per core: got {len(sources)} "
                f"sources for {self.n_cores} cores"
            )
        for source in sources:
            validate = getattr(source, "validate_for", None)
            if validate is not None:
                validate(self.channels, self.banks_per_channel)


@dataclass(frozen=True, slots=True)
class DefenseConfig:
    """One (tracker, scheme) configuration of the evaluation."""

    tracker: str = "none"
    scheme: str = "no-rp"
    trh: float = 4000.0
    alpha: float = 1.0
    tmro_ns: Optional[float] = None
    fraction_bits: int = 7
    rfmth: int = 80
    seed: int = 0
    #: Override for the tracker's provisioning threshold as a fraction
    #: of TRH, e.g. the measured T*(tMRO) of Fig 4 when sweeping ExPress
    #: configurations (Fig 5).  None uses the scheme's default rule.
    target_scale: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tracker not in TRACKER_NAMES:
            raise ValueError(f"unknown tracker: {self.tracker!r}")
        if self.scheme not in SCHEME_NAMES:
            raise ValueError(f"unknown scheme: {self.scheme!r}")
        if self.trh <= 0:
            raise ValueError("trh must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")

    @property
    def target_threshold(self) -> float:
        """Threshold the tracker must be provisioned for.

        ExPress (at tMRO = tRAS + tRC) and ImPress-N leave Row-Press
        worth up to (1 + alpha) unmitigated per recorded ACT (Eq 5), so
        their trackers target TRH / (1 + alpha).  No-RP and ImPress-P
        keep the full TRH.  ``target_scale`` overrides the rule.
        """
        if self.target_scale is not None:
            return self.trh * self.target_scale
        if self.scheme in ("express", "impress-n"):
            return self.trh / (1.0 + self.alpha)
        return self.trh

    @property
    def uses_rfm(self) -> bool:
        """Trackers the controller must drive with RFM commands.

        DSAC is in-DRAM storage-wise, but in this model it mitigates
        synchronously from its record path (like PRAC's ABO flow), so
        neither needs RFM scheduling.
        """
        return self.tracker in ("mithril", "mint")

    @property
    def tracker_fraction_bits(self) -> int:
        return self.fraction_bits if self.scheme == "impress-p" else 0

    def effective_rfmth(self) -> int:
        """RFM rate: MINT tightens RFMTH to keep its tolerated TRH."""
        if self.tracker != "mint":
            return self.rfmth
        if self.scheme in ("express", "impress-n"):
            # Keep the same tolerated threshold by issuing RFM more
            # often: RFM-40 at alpha = 1, RFM-60 at alpha = 0.35
            # (Appendix A).
            return max(1, math.ceil(self.rfmth / (1.0 + self.alpha)))
        return self.rfmth

    def express_tmro_cycles(self, timings: CycleTimings) -> Optional[int]:
        if self.scheme != "express" and self.tmro_ns is None:
            return None
        tmro_ns = (
            self.tmro_ns if self.tmro_ns is not None else DEFAULT_EXPRESS_TMRO_NS
        )
        cycles = timings.clock.cycles(tmro_ns)
        # Test-only plant for the invariant engine/fuzzer: enforce a far
        # weaker limit than configured.  Inactive in every normal run;
        # see repro.security.faults.
        from ..security import faults

        if faults.fault_active("lax-tmro"):
            cycles *= faults.LAX_TMRO_FACTOR
        return cycles

    # -- tracker construction -------------------------------------------

    def _build_tracker(self, bank_seed: int) -> Tracker:
        bits = self.tracker_fraction_bits
        if self.tracker == "none":
            return AccountingTracker()
        if self.tracker == "graphene":
            target = self.target_threshold
            return GrapheneTracker(
                entries=graphene_entries(target),
                internal_threshold=graphene_internal_threshold(target),
                fraction_bits=bits,
            )
        if self.tracker == "para":
            return ParaTracker(
                p=para_probability(self.target_threshold),
                rng=random.Random(bank_seed),
            )
        if self.tracker == "mithril":
            return MithrilTracker(
                entries=mithril_entries(self.target_threshold, self.rfmth),
                fraction_bits=bits,
            )
        if self.tracker == "mint":
            return MintTracker(
                rfmth=self.effective_rfmth(),
                fraction_bits=bits,
                rng=random.Random(bank_seed),
            )
        if self.tracker == "prac":
            # Alert at half the provisioning target: the ABO flow needs
            # headroom for back-off latency and the blast-radius victims
            # (Section VI-F), mirroring Graphene's internal-threshold
            # margin.
            return PracTracker(
                alert_threshold=self.target_threshold / 2.0,
                rows_per_bank=PRAC_SIM_ROWS_PER_BANK,
                fraction_bits=bits,
            )
        if self.tracker == "dsac":
            # DSAC keeps a Graphene-shaped counter table but re-weighs
            # activations logarithmically (Section VII); provisioned
            # like Graphene so the comparison isolates the weighting.
            target = self.target_threshold
            return DsacLikeTracker(
                entries=graphene_entries(target),
                mitigation_threshold=graphene_internal_threshold(target),
            )
        raise AssertionError("unreachable")

    def build_scheme(
        self, timings: CycleTimings, num_banks: int
    ) -> MitigationScheme:
        """Per-bank trackers wrapped in the configured RP scheme."""
        trackers = [
            self._build_tracker(self.seed * 7919 + bank)
            for bank in range(num_banks)
        ]
        if self.scheme == "no-rp":
            return NoRpScheme(trackers, timings)
        if self.scheme == "express":
            tmro = self.express_tmro_cycles(timings)
            assert tmro is not None
            return ExpressScheme(trackers, timings, tmro)
        if self.scheme == "impress-n":
            return ImpressNScheme(trackers, timings)
        if self.scheme == "impress-p":
            return ImpressPScheme(trackers, timings, self.fraction_bits)
        raise AssertionError("unreachable")
