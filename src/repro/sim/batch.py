"""Batch engine tier: simulate groups of sweep points in lockstep.

The third engine tier (reference → fast → batch).  A sweep grid is many
near-identical points: same workload and topology, different defense
configurations.  Two such points produce *cycle-identical* command
timelines whenever their trackers never fire a synchronous mitigation,
because a tracker can only bend the schedule through three channels:

1. the controller's ``tmro_cycles`` (row-open deadline),
2. the RFM cadence (``use_rfm`` / ``rfmth``), and
3. the act/close kernels' mitigation counts, which queue 4×tRC victim
   blocks on the bank.

(1) and (2) are construction-time scalars, so points agreeing on them —
the group's *timing signature* — share a timeline until (3) fires.  The
batch engine exploits this with a **leader/replay** scheme:

* **Record** — one *leader* lane per group runs the real fast engine
  with recording shims wrapped around its per-bank kernel slots,
  capturing every demand ACT, row close and RFM per bank
  (structure-of-arrays int64 NumPy timelines, ``tests`` pin them).
* **Replay** — every *follower* lane replays the recorded streams
  through its own tracker kernels, vectorized per bank
  (:mod:`repro.trackers.batch_kernels`), with an exact scalar replay
  for the combinations the vector kernels cannot decide.  A follower
  whose replay proves "no synchronous mitigation anywhere" gets the
  leader's :class:`~repro.sim.stats.SimResult` verbatim with only its
  own ``rfm_mitigations`` substituted — bit-identical to what a full
  fast-engine run would produce (``tests/test_batch_engine.py`` pins
  this against the oracle across the equivalence matrix).
* **Fall back** — if the leader itself fired (its run is still a valid
  fast-engine run) or a follower's replay diverges, that lane is
  simulated for real on the fast engine.  Correctness never depends on
  the replay verdicts; they only decide which lanes get to skip work.

The fast engine stays the oracle; without NumPy the tier is simply
unavailable (:func:`batch_available`) and every caller falls back to
per-point fast-engine runs.  See docs/performance.md § "Batch engine
tier".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..trackers.batch_kernels import (
    EV_ACT,
    EV_CLOSE,
    EV_RFM,
    NUMPY_IMPORT_HINT,
    numpy_available,
    replay_lane_python,
    replay_lane_vector,
)
from .config import DefenseConfig, SystemConfig
from .stats import SimResult
from .system import SystemSimulator

__all__ = [
    "BatchStats",
    "batch_available",
    "simulate_batch",
]


def batch_available() -> bool:
    """True when the batch tier can run (NumPy importable)."""
    return numpy_available()


@dataclass(slots=True)
class BatchStats:
    """How a :func:`simulate_batch` call divided its work.

    ``points`` counts input lanes (after the call's own dedup the
    unique lanes are ``leaders + replayed + fallbacks + singletons``).
    ``vector_replays`` / ``python_replays`` count replay *attempts*;
    a lane may appear in both when the vector verdict was "unknown".
    """

    points: int = 0        #: input lanes (including duplicates)
    groups: int = 0        #: multi-lane timing-signature groups
    leaders: int = 0       #: lanes simulated for real, with recording
    replayed: int = 0      #: follower lanes served by replay
    fallbacks: int = 0     #: follower lanes re-simulated for real
    singletons: int = 0    #: lanes alone in their group (plain fast run)
    vector_replays: int = 0
    python_replays: int = 0


#: Leader preference within a group: lanes whose kernels provably never
#: fire keep every follower replayable.  ``none`` has no kernels at
#: all; MINT/Mithril record-path kernels always return 0 (they mitigate
#: via RFM, which does not touch timing); the counter trackers can
#: fire; PARA fires all the time.
_LEADER_RANK = {
    "none": 0,
    "mint": 0,
    "mithril": 0,
    "graphene": 1,
    "prac": 1,
    "dsac": 1,
    "para": 2,
}


def _normalize_point(point) -> Tuple[object, Optional[DefenseConfig],
                                     Optional[float]]:
    """Canonicalize a point spec into the ``(workload, defense, tmro_ns)``
    triple (mirrors ``repro.experiments.common._normalize_point``, kept
    local so the sim package does not import the experiments layer)."""
    sweep_point = getattr(point, "sweep_point", None)
    if sweep_point is not None:
        return sweep_point()
    if isinstance(point, str):
        return (point, None, None)
    workload, *rest = point
    defense = rest[0] if rest else None
    tmro_ns = rest[1] if len(rest) > 1 else None
    return (workload, defense, tmro_ns)


def _timing_signature(defense: Optional[DefenseConfig],
                      tmro_ns: Optional[float], timings) -> tuple:
    """The construction-time scalars that pin a lane's timeline.

    Lanes with equal signatures (and equal workloads) share a command
    timeline until a synchronous mitigation fires — see the module
    docstring for why these three values are the complete set.
    """
    d = defense or DefenseConfig()
    tmro = (
        timings.clock.cycles(tmro_ns)
        if tmro_ns is not None
        else d.express_tmro_cycles(timings)
    )
    if d.uses_rfm:
        return (tmro, True, d.effective_rfmth())
    return (tmro, False, None)


class _BankLog:
    """One bank's recorded events as parallel Python lists (append-hot)."""

    __slots__ = ("kinds", "rows", "a", "b")

    def __init__(self) -> None:
        self.kinds: List[int] = []
        self.rows: List[int] = []
        self.a: List[int] = []
        self.b: List[int] = []


class _Recorder:
    """Wraps a leader simulator's kernel slots with recording shims.

    The shims append to per-flat-bank :class:`_BankLog` streams at
    exactly the points the controller would invoke the real kernels, so
    recorded order equals kernel-invocation order.  The real kernels
    still run (the leader's own result must be a genuine fast-engine
    run); ``fired`` flips as soon as any act/close kernel returns a
    mitigation, which invalidates replay for *all* followers (RFM
    returns are timing-neutral and do not count).
    """

    __slots__ = ("logs", "_fired")

    def __init__(self, simulator: SystemSimulator) -> None:
        system = simulator.system
        per = system.banks_per_channel
        self.logs = [
            _BankLog() for _ in range(system.channels * per)
        ]
        self._fired = [False]
        for channel, controller in enumerate(simulator.controllers):
            for bank in range(per):
                self._install(controller, bank, self.logs[channel * per + bank])

    @property
    def fired(self) -> bool:
        """True once any act/close kernel fired a synchronous mitigation."""
        return self._fired[0]

    def _install(self, controller, bank: int, log: _BankLog) -> None:
        real_act = controller._act_kernels[bank]
        real_close = controller._close_kernels[bank]
        real_rfm = controller._rfm_kernels[bank]
        fired = self._fired
        kinds, rows, a, b = log.kinds, log.rows, log.a, log.b

        def act(row):
            kinds.append(EV_ACT)
            rows.append(row)
            a.append(0)
            b.append(0)
            if real_act is None:
                return 0
            count = real_act(row)
            if count:
                fired[0] = True
            return count

        def close(row, act_cycle, pre_cycle):
            kinds.append(EV_CLOSE)
            rows.append(row)
            a.append(act_cycle)
            b.append(pre_cycle)
            if real_close is None:
                return 0
            count = real_close(row, act_cycle, pre_cycle)
            if count:
                fired[0] = True
            return count

        def rfm(start):
            kinds.append(EV_RFM)
            rows.append(-1)
            a.append(start)
            b.append(0)
            return real_rfm(start)

        controller._act_kernels[bank] = act
        controller._close_kernels[bank] = close
        controller._rfm_kernels[bank] = rfm

    def timeline(self, banks_per_channel: int, timings):
        """The recorded streams as a NumPy :class:`RecordedTimeline`."""
        from ..trackers.batch_kernels import BankEvents, RecordedTimeline

        return RecordedTimeline(
            [
                BankEvents(log.kinds, log.rows, log.a, log.b)
                for log in self.logs
            ],
            banks_per_channel,
            timings,
        )


def _compiled_for(workload, system: SystemConfig,
                  n_requests_per_core: int, seed: int):
    """Compiled traces for a workload key (same dispatch and process
    caches as :func:`~repro.sim.system.simulate_workload`)."""
    from ..workloads.compiled import compiled_point_traces

    if not isinstance(workload, str):
        system.validate_sources(tuple(workload))
    return compiled_point_traces(
        workload, system.n_cores, n_requests_per_core, seed, system.mapper()
    )


def _follower_result(leader: SimResult, rfm_mitigations: int) -> SimResult:
    """The leader's result with the follower's own RFM-mitigation count.

    Everything else is shared by construction (identical timeline, and
    RFM-kernel returns only feed the ``rfm_mitigations`` counter).
    Lists and the counts dataclass are copied so callers mutating one
    result cannot corrupt its group siblings.
    """
    return dataclasses.replace(
        leader,
        core_cycles=list(leader.core_cycles),
        core_requests=list(leader.core_requests),
        counts=dataclasses.replace(leader.counts),
        core_demand_acts=list(leader.core_demand_acts),
        rfm_mitigations=rfm_mitigations,
    )


def simulate_batch(
    points: Sequence[object],
    system: Optional[SystemConfig] = None,
    n_requests_per_core: int = 2000,
    seed: int = 0,
    stats: Optional[BatchStats] = None,
) -> List[SimResult]:
    """Simulate a batch of sweep points; results in input order.

    Each point is anything :meth:`SweepRunner.run_many` accepts (a
    workload name, a ``(workload, defense[, tmro_ns])`` tuple, or an
    object with ``sweep_point()``).  Results are bit-identical to
    running each point through :func:`~repro.sim.system.simulate_workload`
    with the same ``system`` / ``n_requests_per_core`` / ``seed`` —
    lanes the replay cannot prove safe are simply simulated for real.
    A single-lane batch therefore degenerates to one fast-engine run.

    Raises ImportError when NumPy is unavailable; callers that want the
    graceful fallback should guard on :func:`batch_available`.  Pass a
    :class:`BatchStats` to observe how the work was divided.
    """
    if not numpy_available():
        raise ImportError(NUMPY_IMPORT_HINT)
    system = system or SystemConfig()
    timings = system.timings
    st = stats if stats is not None else BatchStats()

    normalized = [_normalize_point(point) for point in points]
    st.points += len(normalized)
    unique: List[tuple] = []
    for key in normalized:
        if key not in unique:
            unique.append(key)
    groups: Dict[tuple, List[tuple]] = {}
    for key in unique:
        workload, defense, tmro_ns = key
        signature = (workload, _timing_signature(defense, tmro_ns, timings))
        groups.setdefault(signature, []).append(key)

    results: Dict[tuple, SimResult] = {}

    def full_sim(key) -> SimResult:
        workload, defense, tmro_ns = key
        compiled = _compiled_for(workload, system, n_requests_per_core, seed)
        return SystemSimulator(
            system, defense=defense, tmro_ns=tmro_ns, compiled=compiled
        ).run()

    for lanes in groups.values():
        if len(lanes) == 1:
            st.singletons += 1
            results[lanes[0]] = full_sim(lanes[0])
            continue
        st.groups += 1
        leader_key = min(
            lanes,
            key=lambda key: _LEADER_RANK[
                (key[1] or DefenseConfig()).tracker
            ],
        )
        workload, leader_defense, leader_tmro = leader_key
        compiled = _compiled_for(workload, system, n_requests_per_core, seed)
        simulator = SystemSimulator(
            system, defense=leader_defense, tmro_ns=leader_tmro,
            compiled=compiled,
        )
        recorder = _Recorder(simulator)
        results[leader_key] = simulator.run()
        st.leaders += 1

        followers = [key for key in lanes if key != leader_key]
        if recorder.fired:
            # The leader bent its own timeline; its result is still a
            # genuine fast-engine run, but no follower can replay it.
            for key in followers:
                st.fallbacks += 1
                results[key] = full_sim(key)
            continue

        timeline = recorder.timeline(system.banks_per_channel, timings)
        for key in followers:
            defense = key[1] or DefenseConfig()
            st.vector_replays += 1
            verdict, rfm = replay_lane_vector(defense, timeline)
            if verdict == "unknown":
                st.python_replays += 1
                try:
                    valid, rfm = replay_lane_python(
                        defense, timings, system.banks_per_channel,
                        system.channels, recorder.logs,
                    )
                except Exception:
                    # e.g. PRAC's out-of-range row: re-simulate so the
                    # error (or its absence) comes from the real engine.
                    valid = False
                verdict = "valid" if valid else "diverged"
            if verdict == "valid":
                st.replayed += 1
                results[key] = _follower_result(results[leader_key], rfm)
            else:
                st.fallbacks += 1
                results[key] = full_sim(key)

    return [results[key] for key in normalized]
