"""Trace-driven core model.

Each core replays its LLC-miss trace with a bounded number of
outstanding misses (the MLP the ROB can expose) and per-request think
time.  This is the DESIGN.md substitution for the paper's cycle-level
out-of-order cores: the DRAM-side phenomena under study depend on the
arrival structure the trace encodes, not on in-core microarchitecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..workloads.trace import Trace


@dataclass(slots=True)
class CoreState:
    """Issue/retire bookkeeping for one core."""

    core_id: int
    trace: Trace
    mlp: int = 8
    index: int = 0
    outstanding: int = 0
    retired: int = 0
    stalled_on_mlp: bool = False
    finish_cycle: Optional[int] = None
    #: Cached ``len(trace)`` — the retire path runs once per request and
    #: must not pay a ``__len__`` dispatch each time.
    trace_length: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.mlp < 1:
            raise ValueError("mlp must be positive")
        self.trace_length = len(self.trace)

    @property
    def exhausted(self) -> bool:
        return self.index >= self.trace_length

    @property
    def done(self) -> bool:
        return self.index >= self.trace_length and self.outstanding == 0

    def can_issue(self) -> bool:
        return self.index < self.trace_length and self.outstanding < self.mlp

    def issue(self) -> None:
        self.index += 1
        self.outstanding += 1

    def retire(self, cycle: int) -> None:
        outstanding = self.outstanding - 1
        if outstanding < 0:
            raise RuntimeError("retire with no outstanding request")
        self.outstanding = outstanding
        self.retired += 1
        if outstanding == 0 and self.index >= self.trace_length:
            self.finish_cycle = cycle
