"""Memory controller: request queues, FR-FCFS scheduling, page policy."""

from .controller import (
    BANK_QUEUE_CAPACITY,
    VICTIMS_PER_MITIGATION,
    ChannelController,
    Completion,
    ServiceResult,
)
from .request import InFlightRequest

__all__ = [
    "BANK_QUEUE_CAPACITY",
    "VICTIMS_PER_MITIGATION",
    "ChannelController",
    "Completion",
    "ServiceResult",
    "InFlightRequest",
]
