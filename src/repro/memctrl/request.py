"""In-flight memory requests as seen by the controller.

:class:`InFlightRequest` is on the simulator's hot path — one instance
per LLC miss — so it is a ``__slots__`` class holding the decomposed
address as plain ints rather than a nested :class:`MappedAddress`.  The
``mapped`` keyword/property is kept for callers that already have a
decomposed address object.
"""

from __future__ import annotations

from typing import Optional

from ..dram.address import MappedAddress


class InFlightRequest:
    """One demand request queued at a bank."""

    __slots__ = (
        "core_id",
        "channel",
        "bank",
        "row",
        "column",
        "is_write",
        "enqueue_cycle",
    )

    def __init__(
        self,
        core_id: int,
        mapped: Optional[MappedAddress] = None,
        is_write: bool = False,
        enqueue_cycle: int = 0,
        *,
        channel: Optional[int] = None,
        bank: Optional[int] = None,
        row: Optional[int] = None,
        column: int = 0,
    ) -> None:
        self.core_id = core_id
        if mapped is not None:
            if channel is not None or bank is not None or row is not None:
                raise TypeError(
                    "pass either 'mapped' or explicit coordinates, not both"
                )
            self.channel = mapped.channel
            self.bank = mapped.bank
            self.row = mapped.row
            self.column = mapped.column
        elif channel is None or bank is None or row is None:
            # Preserve the old dataclass's required-field contract: an
            # address must be supplied, either packed or decomposed.
            raise TypeError(
                "InFlightRequest needs 'mapped' or explicit "
                "channel/bank/row coordinates"
            )
        else:
            self.channel = channel
            self.bank = bank
            self.row = row
            self.column = column
        self.is_write = is_write
        self.enqueue_cycle = enqueue_cycle

    @property
    def mapped(self) -> MappedAddress:
        """The request's address as a :class:`MappedAddress`."""
        return MappedAddress(
            channel=self.channel,
            bank=self.bank,
            row=self.row,
            column=self.column,
        )

    def __repr__(self) -> str:
        return (
            f"InFlightRequest(core_id={self.core_id}, channel={self.channel},"
            f" bank={self.bank}, row={self.row}, column={self.column},"
            f" is_write={self.is_write}, enqueue_cycle={self.enqueue_cycle})"
        )
