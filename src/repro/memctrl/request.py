"""In-flight memory requests as seen by the controller."""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.address import MappedAddress


@dataclass
class InFlightRequest:
    """One demand request queued at a bank."""

    core_id: int
    mapped: MappedAddress
    is_write: bool
    enqueue_cycle: int

    @property
    def row(self) -> int:
        return self.mapped.row
