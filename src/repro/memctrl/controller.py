"""Channel memory controller: queues, FR-FCFS scheduling, page policy.

One :class:`ChannelController` owns the banks of one channel.  The system
simulator drives it with two calls:

* :meth:`enqueue` — a core's LLC miss arrives;
* :meth:`service` — the bank is (possibly) free: do the highest-priority
  piece of work and report when to look again and which requests finished.

Scheduling priority per bank (Section III and the baseline of Table II):

1. refresh, once a REF pulse is due (closes the open row);
2. RFM, when the bank's activation count reaches RFMTH (in-DRAM
   tracker configurations only) — the in-DRAM tracker mitigates under it;
3. pending mitigative victim refreshes requested by an MC-based tracker;
4. tMRO expiry (ExPress): force-close a row open too long;
5. demand requests, row hits first (FR-FCFS), then oldest-first.

Every row closure is reported to the mitigation scheme, which is how
ImPress-N earns its window credits and ImPress-P its EACT records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.mitigation import MitigationScheme
from ..dram.bank import Bank
from ..dram.commands import CommandCounts
from ..dram.refresh import RefreshScheduler
from ..dram.timing import CycleTimings
from .request import InFlightRequest

#: Demand-queue capacity per bank; cores back off when it fills.
BANK_QUEUE_CAPACITY = 16

#: Victim refreshes per mitigation: blast radius 2 -> 4 rows, each an
#: ACT + PRE taking one tRC (Appendix B's 4-activation mitigation cost).
VICTIMS_PER_MITIGATION = 4


@dataclass(slots=True)
class Completion:
    """A demand request finished: data back at ``cycle`` for ``core_id``."""

    cycle: int
    core_id: int
    is_write: bool


@dataclass(slots=True)
class ServiceResult:
    """What a service step did and when the bank needs attention next."""

    next_wake: Optional[int] = None
    completions: List[Completion] = field(default_factory=list)
    worked: bool = False


@dataclass(slots=True)
class BankBookkeeping:
    """Controller-side per-bank state beyond the DRAM bank itself."""

    queue: List[InFlightRequest] = field(default_factory=list)
    pending_mitigations: int = 0      # aggressors awaiting victim refresh
    acts_since_rfm: int = 0
    busy_until: int = 0
    act_cycle: int = -1               # when the open row was activated
    columns_since_act: int = 0        # MOP burst accounting
    last_use: int = 0                 # last ACT or column issue


class ChannelController:
    """Memory controller for one channel."""

    def __init__(
        self,
        timings: CycleTimings,
        num_banks: int,
        scheme: MitigationScheme,
        use_rfm: bool = False,
        rfmth: int = 80,
        tmro_cycles: Optional[int] = None,
        mop_burst_lines: Optional[int] = 8,
        idle_close_cycles: Optional[int] = 400,
    ) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be positive")
        self.timings = timings
        self.num_banks = num_banks
        self.scheme = scheme
        self.use_rfm = use_rfm
        self.rfmth = rfmth
        # ExPress publishes its limit through the scheme; an explicit
        # tmro_cycles argument overrides (used in tMRO sweeps, Fig 3).
        self.tmro_cycles = (
            tmro_cycles if tmro_cycles is not None else scheme.tmro_cycles()
        )
        self.mop_burst_lines = mop_burst_lines
        self.idle_close_cycles = idle_close_cycles
        self.banks = [Bank(timings=timings, bank_id=i) for i in range(num_banks)]
        stagger = max(1, timings.tREFI // num_banks)
        self.refresh = [
            RefreshScheduler(timings, phase_offset=i * stagger)
            for i in range(num_banks)
        ]
        self.state = [BankBookkeeping() for _ in range(num_banks)]
        self.counts = CommandCounts()
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.rfm_mitigations = 0
        self.tmro_closures = 0

    # -- demand arrival ------------------------------------------------

    def can_accept(self, bank_id: int) -> bool:
        return len(self.state[bank_id].queue) < BANK_QUEUE_CAPACITY

    def enqueue(self, request: InFlightRequest) -> None:
        bank_id = request.bank
        if not self.can_accept(bank_id):
            raise RuntimeError(f"bank {bank_id} queue full")
        self.state[bank_id].queue.append(request)

    def pending_requests(self, bank_id: int) -> int:
        return len(self.state[bank_id].queue)

    # -- helpers ---------------------------------------------------------

    def _close_row(self, bank_id: int, cycle: int) -> int:
        """Precharge the open row; feeds the scheme.  Returns PRE cycle."""
        bank = self.banks[bank_id]
        book = self.state[bank_id]
        pre_cycle = max(cycle, bank.earliest_pre())
        row = bank.open_row
        bank.precharge(pre_cycle)
        self.counts.precharges += 1
        mitigations = self.scheme.on_row_closed(
            bank_id, row, book.act_cycle, pre_cycle
        )
        book.pending_mitigations += len(mitigations)
        return pre_cycle

    def _activate(self, bank_id: int, row: int, cycle: int,
                  mitigative: bool = False) -> int:
        bank = self.banks[bank_id]
        book = self.state[bank_id]
        act_cycle = max(cycle, bank.earliest_act())
        bank.activate(row, act_cycle)
        book.act_cycle = act_cycle
        book.acts_since_rfm += 1
        if mitigative:
            self.counts.mitigative_acts += 1
        else:
            self.counts.demand_acts += 1
            mitigations = self.scheme.on_activate(bank_id, row, act_cycle)
            book.pending_mitigations += len(mitigations)
        return act_cycle

    def _tmro_expired(self, bank_id: int, cycle: int) -> bool:
        bank = self.banks[bank_id]
        book = self.state[bank_id]
        return (
            self.tmro_cycles is not None
            and bank.is_open
            and cycle - book.act_cycle >= self.tmro_cycles
        )

    # -- the scheduling step ---------------------------------------------

    def service(self, bank_id: int, cycle: int) -> ServiceResult:
        """Do one piece of work on the bank at ``cycle``."""
        book = self.state[bank_id]
        bank = self.banks[bank_id]
        if book.busy_until > cycle:
            return ServiceResult(next_wake=book.busy_until)

        # 1. Refresh.
        refresh = self.refresh[bank_id]
        if refresh.due(cycle):
            start = cycle
            if bank.is_open:
                start = self._close_row(bank_id, cycle) + self.timings.tPRE
            start = max(start, bank.earliest_act())
            done = bank.refresh(start)
            refresh.issue(start)
            self.counts.refreshes += 1
            book.busy_until = done
            return ServiceResult(next_wake=done, worked=True)

        # 2. RFM (in-DRAM tracker configurations).
        if self.use_rfm and book.acts_since_rfm >= self.rfmth:
            start = cycle
            if bank.is_open:
                start = self._close_row(bank_id, cycle) + self.timings.tPRE
            start = max(start, bank.earliest_act())
            done = start + self.timings.tRFM
            # RFM blocks the bank; in-DRAM mitigation happens within it.
            bank_rfm_done = bank.rfm(start)
            done = max(done, bank_rfm_done)
            book.acts_since_rfm = 0
            self.counts.rfms += 1
            if self.scheme.on_rfm(bank_id, start) is not None:
                self.rfm_mitigations += 1
            book.busy_until = done
            return ServiceResult(next_wake=done, worked=True)

        # 3. Mitigative victim refreshes (MC-based trackers).
        if book.pending_mitigations > 0:
            start = cycle
            if bank.is_open:
                start = self._close_row(bank_id, cycle) + self.timings.tPRE
            start = max(start, bank.earliest_act())
            # Four victims, each ACT + PRE back to back (one tRC apiece);
            # modeled as a block without opening a demand-visible row.
            done = start + VICTIMS_PER_MITIGATION * self.timings.tRC
            self.counts.mitigative_acts += VICTIMS_PER_MITIGATION
            self.counts.precharges += VICTIMS_PER_MITIGATION
            book.pending_mitigations -= 1
            book.busy_until = done
            # Keep the bank's ACT clock coherent for the next demand ACT.
            bank.block_until(done)
            return ServiceResult(next_wake=done, worked=True)

        # 4. tMRO expiry (ExPress / tMRO sweeps).
        if self._tmro_expired(bank_id, cycle):
            pre_cycle = self._close_row(bank_id, cycle)
            self.tmro_closures += 1
            book.busy_until = pre_cycle + self.timings.tPRE
            return ServiceResult(next_wake=book.busy_until, worked=True)

        # 5. Demand requests, hits first.
        result = self._serve_demand(bank_id, cycle)
        if result is not None:
            return result

        # 6. Idle precharge: close a row nobody is hitting.
        if (
            self.idle_close_cycles is not None
            and bank.is_open
            and not book.queue
            and cycle - book.last_use >= self.idle_close_cycles
        ):
            pre_cycle = self._close_row(bank_id, cycle)
            book.busy_until = pre_cycle + self.timings.tPRE
            return ServiceResult(next_wake=book.busy_until, worked=True)

        # Nothing to do: wake for refresh, tMRO expiry or idle close.
        wake = refresh.next_due
        if bank.is_open:
            if self.tmro_cycles is not None:
                wake = min(wake, book.act_cycle + self.tmro_cycles)
            if self.idle_close_cycles is not None and not book.queue:
                wake = min(wake, book.last_use + self.idle_close_cycles)
        return ServiceResult(next_wake=wake)

    def _serve_demand(
        self, bank_id: int, cycle: int
    ) -> Optional[ServiceResult]:
        book = self.state[bank_id]
        bank = self.banks[bank_id]
        if not book.queue:
            return None
        request: Optional[InFlightRequest] = None
        open_row = bank.open_row
        if open_row is not None:
            for queued in book.queue:
                if queued.row == open_row:
                    request = queued
                    break
        if request is not None:
            # Row hit: column access only.
            self.row_hits += 1
            book.queue.remove(request)
            col_cycle = max(cycle, bank.earliest_col())
            data_cycle = bank.column_access(col_cycle)
            self._count_column(request)
            book.busy_until = col_cycle + self.timings.tCCD
            book.last_use = col_cycle
            book.columns_since_act += 1
            self._maybe_mop_close(bank_id, col_cycle)
            done_cycle = col_cycle if request.is_write else data_cycle
            return ServiceResult(
                next_wake=book.busy_until,
                completions=[
                    Completion(done_cycle, request.core_id, request.is_write)
                ],
                worked=True,
            )
        # Oldest request: conflict (open other row) or miss (closed).
        request = book.queue.pop(0)
        start = cycle
        if bank.is_open:
            self.row_conflicts += 1
            start = self._close_row(bank_id, cycle) + self.timings.tPRE
        else:
            self.row_misses += 1
        act_cycle = self._activate(bank_id, request.row, start)
        col_cycle = max(act_cycle + self.timings.tRCD, bank.earliest_col())
        data_cycle = bank.column_access(col_cycle)
        self._count_column(request)
        book.busy_until = col_cycle + self.timings.tCCD
        book.last_use = col_cycle
        book.columns_since_act = 1
        self._maybe_mop_close(bank_id, col_cycle)
        done_cycle = col_cycle if request.is_write else data_cycle
        return ServiceResult(
            next_wake=book.busy_until,
            completions=[
                Completion(done_cycle, request.core_id, request.is_write)
            ],
            worked=True,
        )

    def _maybe_mop_close(self, bank_id: int, col_cycle: int) -> None:
        """MOP auto-precharge once the row-group burst is exhausted.

        Only the configured number of consecutive lines map to the row,
        so the controller closes it as soon as they have all been served
        (Minimalist Open Page, Table II).
        """
        book = self.state[bank_id]
        if (
            self.mop_burst_lines is not None
            and self.banks[bank_id].is_open
            and book.columns_since_act >= self.mop_burst_lines
        ):
            pre_cycle = self._close_row(bank_id, col_cycle)
            book.busy_until = max(
                book.busy_until, pre_cycle + self.timings.tPRE
            )

    def _count_column(self, request: InFlightRequest) -> None:
        if request.is_write:
            self.counts.writes += 1
        else:
            self.counts.reads += 1

    # -- wrap-up -----------------------------------------------------------

    def flush_open_rows(self, cycle: int) -> None:
        """Close every open row at simulation end so EACTs are recorded."""
        for bank_id, bank in enumerate(self.banks):
            if bank.is_open:
                self._close_row(bank_id, max(cycle, bank.earliest_pre()))

    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0
