"""Channel memory controller: queues, FR-FCFS scheduling, page policy.

One :class:`ChannelController` owns the banks of one channel.  The system
simulator drives it with two calls:

* :meth:`enqueue` — a core's LLC miss arrives;
* :meth:`service` — the bank is (possibly) free: do the highest-priority
  piece of work and report when to look again and which requests finished.

Scheduling priority per bank (Section III and the baseline of Table II):

1. refresh, once a REF pulse is due (closes the open row);
2. RFM, when the bank's activation count reaches RFMTH (in-DRAM
   tracker configurations only) — the in-DRAM tracker mitigates under it;
3. pending mitigative victim refreshes requested by an MC-based tracker;
4. tMRO expiry (ExPress): force-close a row open too long;
5. demand requests, row hits first (FR-FCFS), then oldest-first.

Every row closure is reported to the mitigation scheme, which is how
ImPress-N earns its window credits and ImPress-P its EACT records.

**Hot-path engineering** (see ``docs/performance.md``): the scheme's
per-bank activate/close/RFM kernels are hoisted into flat lists at
construction, so the service path never goes through
``scheme.on_row_closed -> tracker_for -> record`` dynamic dispatch; the
timing fields used per step are cached as plain ints; and ``service`` /
``_serve_demand`` read each per-bank object exactly once into locals.
Scheduling decisions are unchanged — ``tests/test_sim_golden.py`` pins
the pre-refactor results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.mitigation import MitigationScheme
from ..dram.bank import Bank
from ..dram.commands import CommandCounts
from ..dram.refresh import RefreshScheduler
from ..dram.timing import CycleTimings
from .request import InFlightRequest

#: Demand-queue capacity per bank; cores back off when it fills.
BANK_QUEUE_CAPACITY = 16

#: Victim refreshes per mitigation: blast radius 2 -> 4 rows, each an
#: ACT + PRE taking one tRC (Appendix B's 4-activation mitigation cost).
VICTIMS_PER_MITIGATION = 4


@dataclass(slots=True)
class Completion:
    """A demand request finished: data back at ``cycle`` for ``core_id``."""

    cycle: int
    core_id: int
    is_write: bool


@dataclass(slots=True)
class ServiceResult:
    """What a service step did and when the bank needs attention next."""

    next_wake: Optional[int] = None
    completions: Sequence[Completion] = ()
    worked: bool = False


@dataclass(slots=True)
class BankBookkeeping:
    """Controller-side per-bank state beyond the DRAM bank itself."""

    queue: List[InFlightRequest] = field(default_factory=list)
    pending_mitigations: int = 0      # aggressors awaiting victim refresh
    acts_since_rfm: int = 0
    busy_until: int = 0
    act_cycle: int = -1               # when the open row was activated
    columns_since_act: int = 0        # MOP burst accounting
    last_use: int = 0                 # last ACT or column issue


class ChannelController:
    """Memory controller for one channel."""

    __slots__ = (
        "timings", "num_banks", "scheme", "use_rfm", "rfmth",
        "tmro_cycles", "mop_burst_lines", "idle_close_cycles", "banks",
        "refresh", "state", "counts", "core_demand_acts", "row_hits",
        "row_misses", "row_conflicts", "rfm_mitigations", "tmro_closures",
        "_act_kernels", "_close_kernels", "_rfm_kernels",
        "_tPRE", "_tRC", "_tRCD", "_tCCD", "_tCAS", "_tRAS", "_tRFM",
    )

    def __init__(
        self,
        timings: CycleTimings,
        num_banks: int,
        scheme: MitigationScheme,
        use_rfm: bool = False,
        rfmth: int = 80,
        tmro_cycles: Optional[int] = None,
        mop_burst_lines: Optional[int] = 8,
        idle_close_cycles: Optional[int] = 400,
    ) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be positive")
        self.timings = timings
        self.num_banks = num_banks
        self.scheme = scheme
        self.use_rfm = use_rfm
        self.rfmth = rfmth
        # ExPress publishes its limit through the scheme; an explicit
        # tmro_cycles argument overrides (used in tMRO sweeps, Fig 3).
        self.tmro_cycles = (
            tmro_cycles if tmro_cycles is not None else scheme.tmro_cycles()
        )
        self.mop_burst_lines = mop_burst_lines
        self.idle_close_cycles = idle_close_cycles
        self.banks = [Bank(timings=timings, bank_id=i) for i in range(num_banks)]
        stagger = max(1, timings.tREFI // num_banks)
        self.refresh = [
            RefreshScheduler(timings, phase_offset=i * stagger)
            for i in range(num_banks)
        ]
        self.state = [BankBookkeeping() for _ in range(num_banks)]
        self.counts = CommandCounts()
        #: Demand ACTs attributed to the core that triggered them,
        #: keyed by core id.  This is what scenario metrics read to
        #: report per-attacker activation rates; it only grows on the
        #: miss/conflict path, so row hits stay untouched.
        self.core_demand_acts: dict = {}
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.rfm_mitigations = 0
        self.tmro_closures = 0
        # Hot-path caches: the scheme's per-bank kernels (no per-step
        # scheme/tracker indirection) and the timing fields the service
        # loop touches, as plain ints.
        self._act_kernels = list(scheme.act_kernels())
        self._close_kernels = list(scheme.close_kernels())
        self._rfm_kernels = list(scheme.rfm_kernels())
        self._tPRE = timings.tPRE
        self._tRC = timings.tRC
        self._tRCD = timings.tRCD
        self._tCCD = timings.tCCD
        self._tCAS = timings.tCAS
        self._tRAS = timings.tRAS
        self._tRFM = timings.tRFM

    # -- demand arrival ------------------------------------------------

    def can_accept(self, bank_id: int) -> bool:
        return len(self.state[bank_id].queue) < BANK_QUEUE_CAPACITY

    def enqueue(self, request: InFlightRequest) -> None:
        bank_id = request.bank
        if not self.can_accept(bank_id):
            raise RuntimeError(f"bank {bank_id} queue full")
        self.state[bank_id].queue.append(request)

    def pending_requests(self, bank_id: int) -> int:
        return len(self.state[bank_id].queue)

    # -- helpers ---------------------------------------------------------

    def _close_row(self, bank_id: int, cycle: int) -> int:
        """Precharge the open row; feeds the scheme.  Returns PRE cycle.

        The precharge arithmetic is inlined (``Bank.precharge`` minus the
        timing assertions — the controller computes ``pre_cycle`` from
        ``earliest_pre`` itself, so the checks cannot fire); observer
        hooks still run when a device/test registered any.
        """
        bank = self.banks[bank_id]
        book = self.state[bank_id]
        ready = bank._ready_pre
        pre_cycle = cycle if cycle >= ready else ready
        row = bank.open_row
        bank.open_row = None
        ready_act = pre_cycle + self._tPRE
        if ready_act > bank._ready_act:
            bank._ready_act = ready_act
        if bank._close_hooks is not None:
            open_cycles = pre_cycle - bank.act_cycle
            for hook in bank._close_hooks:
                hook(row, open_cycles, open_cycles + self._tPRE)
        self.counts.precharges += 1
        close_kernel = self._close_kernels[bank_id]
        if close_kernel is not None:
            book.pending_mitigations += close_kernel(
                row, book.act_cycle, pre_cycle
            )
        return pre_cycle

    def _activate(self, bank_id: int, row: int, cycle: int,
                  mitigative: bool = False) -> int:
        """ACT ``row``; inlined ``Bank.activate`` (same assertion caveat)."""
        bank = self.banks[bank_id]
        book = self.state[bank_id]
        ready = bank._ready_act
        act_cycle = cycle if cycle >= ready else ready
        bank.open_row = row
        bank.act_cycle = act_cycle
        bank._ready_pre = act_cycle + self._tRAS
        bank._ready_col = act_cycle + self._tRCD
        bank._ready_act = act_cycle + self._tRC
        if bank._activate_hooks is not None:
            for hook in bank._activate_hooks:
                hook(row, act_cycle)
        book.act_cycle = act_cycle
        book.acts_since_rfm += 1
        if mitigative:
            self.counts.mitigative_acts += 1
        else:
            self.counts.demand_acts += 1
            act_kernel = self._act_kernels[bank_id]
            if act_kernel is not None:
                book.pending_mitigations += act_kernel(row)
        return act_cycle

    # -- the scheduling step ---------------------------------------------

    def service(self, bank_id: int, cycle: int) -> ServiceResult:
        """Do one piece of work on the bank at ``cycle``."""
        book = self.state[bank_id]
        busy_until = book.busy_until
        if busy_until > cycle:
            return ServiceResult(next_wake=busy_until)
        bank = self.banks[bank_id]
        tpre = self._tPRE

        # 1. Refresh.  (The fast `_next_due` pre-check short-circuits
        # the common not-yet-due case; `due()` keeps the postponement
        # semantics for schedulers that enable it.)
        refresh = self.refresh[bank_id]
        if cycle >= refresh._next_due and refresh.due(cycle):
            start = cycle
            if bank.open_row is not None:
                start = self._close_row(bank_id, cycle) + tpre
            ready = bank.earliest_act()
            if start < ready:
                start = ready
            done = bank.refresh(start)
            refresh.issue(start)
            self.counts.refreshes += 1
            book.busy_until = done
            return ServiceResult(next_wake=done, worked=True)

        # 2. RFM (in-DRAM tracker configurations).
        if self.use_rfm and book.acts_since_rfm >= self.rfmth:
            start = cycle
            if bank.open_row is not None:
                start = self._close_row(bank_id, cycle) + tpre
            ready = bank.earliest_act()
            if start < ready:
                start = ready
            done = start + self._tRFM
            # RFM blocks the bank; in-DRAM mitigation happens within it.
            bank_rfm_done = bank.rfm(start)
            if bank_rfm_done > done:
                done = bank_rfm_done
            book.acts_since_rfm = 0
            self.counts.rfms += 1
            if self._rfm_kernels[bank_id](start) is not None:
                self.rfm_mitigations += 1
            book.busy_until = done
            return ServiceResult(next_wake=done, worked=True)

        # 3. Mitigative victim refreshes (MC-based trackers).
        if book.pending_mitigations > 0:
            start = cycle
            if bank.open_row is not None:
                start = self._close_row(bank_id, cycle) + tpre
            ready = bank.earliest_act()
            if start < ready:
                start = ready
            # Four victims, each ACT + PRE back to back (one tRC apiece);
            # modeled as a block without opening a demand-visible row.
            done = start + VICTIMS_PER_MITIGATION * self._tRC
            self.counts.mitigative_acts += VICTIMS_PER_MITIGATION
            self.counts.precharges += VICTIMS_PER_MITIGATION
            book.pending_mitigations -= 1
            book.busy_until = done
            # Keep the bank's ACT clock coherent for the next demand ACT.
            bank.block_until(done)
            return ServiceResult(next_wake=done, worked=True)

        # 4. tMRO expiry (ExPress / tMRO sweeps).
        tmro = self.tmro_cycles
        bank_open = bank.open_row is not None
        if (
            tmro is not None
            and bank_open
            and cycle - book.act_cycle >= tmro
        ):
            pre_cycle = self._close_row(bank_id, cycle)
            self.tmro_closures += 1
            book.busy_until = pre_cycle + tpre
            return ServiceResult(next_wake=book.busy_until, worked=True)

        # 5. Demand requests, hits first.
        if book.queue:
            return self._serve_demand(bank_id, cycle, book, bank)

        # 6. Idle precharge: close a row nobody is hitting.
        idle_close = self.idle_close_cycles
        if (
            idle_close is not None
            and bank_open
            and not book.queue
            and cycle - book.last_use >= idle_close
        ):
            pre_cycle = self._close_row(bank_id, cycle)
            book.busy_until = pre_cycle + tpre
            return ServiceResult(next_wake=book.busy_until, worked=True)

        # Nothing to do: wake for refresh, tMRO expiry or idle close.
        wake = refresh._next_due
        if bank_open:
            if tmro is not None:
                tmro_wake = book.act_cycle + tmro
                if tmro_wake < wake:
                    wake = tmro_wake
            if idle_close is not None and not book.queue:
                idle_wake = book.last_use + idle_close
                if idle_wake < wake:
                    wake = idle_wake
        return ServiceResult(next_wake=wake)

    def _serve_demand(
        self,
        bank_id: int,
        cycle: int,
        book: BankBookkeeping,
        bank: Bank,
    ) -> ServiceResult:
        """Serve one demand request; the caller guarantees a non-empty
        queue and passes the bank state it already fetched."""
        queue = book.queue
        counts = self.counts
        tccd = self._tCCD
        request: Optional[InFlightRequest] = None
        open_row = bank.open_row
        if open_row is not None:
            for queued in queue:
                if queued.row == open_row:
                    request = queued
                    break
        if request is not None:
            # Row hit: column access only (inlined Bank.column_access).
            self.row_hits += 1
            queue.remove(request)
            ready = bank._ready_col
            col_cycle = cycle if cycle >= ready else ready
            bank._ready_col = col_cycle + tccd
            data_cycle = col_cycle + self._tCAS
            book.columns_since_act += 1
        else:
            # Oldest request: conflict (open other row) or miss (closed).
            request = queue.pop(0)
            start = cycle
            if open_row is not None:
                self.row_conflicts += 1
                start = self._close_row(bank_id, cycle) + self._tPRE
            else:
                self.row_misses += 1
            act_cycle = self._activate(bank_id, request.row, start)
            core_acts = self.core_demand_acts
            core_id = request.core_id
            core_acts[core_id] = core_acts.get(core_id, 0) + 1
            col_cycle = act_cycle + self._tRCD
            bank_col = bank._ready_col
            if col_cycle < bank_col:
                col_cycle = bank_col
            bank._ready_col = col_cycle + tccd
            data_cycle = col_cycle + self._tCAS
            book.columns_since_act = 1
        if request.is_write:
            counts.writes += 1
        else:
            counts.reads += 1
        busy_until = col_cycle + tccd
        book.busy_until = busy_until
        book.last_use = col_cycle
        # MOP auto-precharge once the row-group burst is exhausted
        # (inlined _maybe_mop_close).
        mop = self.mop_burst_lines
        if (
            mop is not None
            and bank.open_row is not None
            and book.columns_since_act >= mop
        ):
            pre_ready = self._close_row(bank_id, col_cycle) + self._tPRE
            if pre_ready > busy_until:
                busy_until = pre_ready
                book.busy_until = busy_until
        # When nothing else is pending on this bank, skip the busy_until
        # no-op wakeup: report the real next deadline (refresh / tMRO /
        # idle close), clamped to busy_until so no work happens earlier
        # than it would have.  This removes one service round-trip per
        # request without moving any command to a different cycle.
        wake = busy_until
        if not queue and book.pending_mitigations == 0 and not (
            self.use_rfm and book.acts_since_rfm >= self.rfmth
        ):
            deadline = self.refresh[bank_id]._next_due
            if bank.open_row is not None:
                tmro = self.tmro_cycles
                if tmro is not None:
                    tmro_wake = book.act_cycle + tmro
                    if tmro_wake < deadline:
                        deadline = tmro_wake
                idle_close = self.idle_close_cycles
                if idle_close is not None:
                    idle_wake = book.last_use + idle_close
                    if idle_wake < deadline:
                        deadline = idle_wake
            if deadline > wake:
                wake = deadline
        done_cycle = col_cycle if request.is_write else data_cycle
        return ServiceResult(
            next_wake=wake,
            completions=[
                Completion(done_cycle, request.core_id, request.is_write)
            ],
            worked=True,
        )

    # -- wrap-up -----------------------------------------------------------

    def flush_open_rows(self, cycle: int) -> None:
        """Close every open row at simulation end so EACTs are recorded."""
        for bank_id, bank in enumerate(self.banks):
            if bank.is_open:
                self._close_row(bank_id, max(cycle, bank.earliest_pre()))

    def hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0
