"""The serve daemon's request engine: admit, coalesce, execute, recover.

The engine is the transport-free core of ``repro serve`` — the HTTP
layer (:mod:`repro.serve.server`) is a thin adapter over it, which is
what makes the robustness claims testable in-process:

* **Write-ahead journal** — every accepted request is journaled
  (:class:`~repro.serve.journal.RequestJournal`) *before* any work
  starts and resolved only after the result blob is durably in the
  store.  A SIGKILLed daemon replays the journal on restart through
  the identical execution path; clients re-poll by content key.
* **Coalescing** — requests are identified by the content key of
  their task recipe (the same key PR 5's store and PR 7's queue use),
  so N concurrent identical requests share one in-flight execution,
  one journal entry, and one result blob.
* **Admission control** — the in-flight set is bounded
  (``max_inflight``), as are the handler threads parked on it
  (``max_waiters``) and the backlog behind it (``queue_watermark`` on
  open queue tasks, ``journal_watermark`` on journal depth).  Crossing
  any watermark sheds the request with an explicit retry-after instead
  of growing threads without bound.
* **Execution** — a miss submits the task to the shared
  :class:`~repro.distrib.queue.FileWorkQueue` and awaits the done
  record, exactly like the sweep coordinator.  When no external worker
  shows signs of life within ``serial_grace_s`` the engine turns
  *sticky-degraded* (the coordinator's discipline) and executes claims
  in-process through the same claim → execute → complete path, so a
  request always completes; workers are an optimization.

Deadlines are a property of the *wait*, not the work: a handler whose
client deadline expires gets the content key back (202-style) while
the resolver keeps running — the work is journaled, the result will
land, and the client re-polls or resubmits idempotently.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..distrib.queue import FileWorkQueue, _read_json, worker_identity
from ..distrib.worker import (
    DEFAULT_CHECKPOINT_STRIDE,
    TASK_KIND,
    build_simulator,
    execute_claimed_task,
    result_alias,
)
from ..results.store import ResultStore, content_key, with_lock_retry
from ..security import faults
from .journal import RequestJournal

#: Exit code the ``serve-kill-mid-request`` chaos fault dies with —
#: right after the journal write, before any execution or result put.
KILL_MID_REQUEST_EXIT = 45

#: Default Retry-After (seconds) handed to shed clients.
DEFAULT_RETRY_AFTER_S = 1.0


class RequestShed(Exception):
    """The request was refused by admission control (retry later)."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(
            f"request shed ({reason}); retry after {retry_after_s:.1f}s"
        )


class RequestFailed(Exception):
    """The request's task failed terminally (poisoned); carries why."""


@dataclass
class InFlight:
    """One admitted request: shared by every coalesced waiter."""

    key: str
    recipe: Dict[str, Any]
    done: threading.Event = field(default_factory=threading.Event)
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    replayed: bool = False
    accepted_at: float = field(default_factory=time.time)


@dataclass
class ServeStats:
    """Monotonic counters surfaced by ``/status``."""

    received: int = 0            # admission decisions taken
    store_hits: int = 0          # answered straight from the store
    coalesced: int = 0           # joined an existing in-flight request
    accepted: int = 0            # new in-flight executions started
    replayed: int = 0            # journal entries replayed on startup
    shed: int = 0                # refused by admission control
    completed: int = 0           # in-flight requests resolved OK
    failed: int = 0              # in-flight requests resolved in error

    def to_json(self) -> Dict[str, int]:
        """Machine-readable counter snapshot."""
        return {
            "received": self.received,
            "store_hits": self.store_hits,
            "coalesced": self.coalesced,
            "accepted": self.accepted,
            "replayed": self.replayed,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
        }


class RequestEngine:
    """Coalescing, journaled, admission-controlled request executor."""

    def __init__(
        self,
        store: ResultStore,
        queue: FileWorkQueue,
        journal: RequestJournal,
        max_inflight: int = 8,
        max_waiters: int = 64,
        queue_watermark: int = 256,
        journal_watermark: int = 64,
        serial_grace_s: float = 2.0,
        poll_s: float = 0.05,
        retry_after_s: float = DEFAULT_RETRY_AFTER_S,
        checkpoint_stride: Optional[int] = DEFAULT_CHECKPOINT_STRIDE,
        owner: Optional[str] = None,
    ) -> None:
        self.store = store
        self.queue = queue
        self.journal = journal
        self.max_inflight = max_inflight
        self.max_waiters = max_waiters
        self.queue_watermark = queue_watermark
        self.journal_watermark = journal_watermark
        self.serial_grace_s = serial_grace_s
        self.poll_s = poll_s
        self.retry_after_s = retry_after_s
        self.checkpoint_stride = checkpoint_stride
        self.owner = owner or f"serve:{worker_identity()}"
        self.stats = ServeStats()
        self.degraded = False
        self.draining = False
        self._lock = threading.Lock()
        self._inflight: Dict[str, InFlight] = {}
        self._waiters = 0
        self._threads: List[threading.Thread] = []

    # -- admission -------------------------------------------------------

    def submit(
        self, recipe: Mapping[str, Any]
    ) -> Tuple[InFlight, str]:
        """Admit one request; returns ``(entry, disposition)``.

        Disposition is ``"hit"`` (already answerable from the store —
        the entry is pre-resolved), ``"coalesced"`` (joined an
        execution already in flight), or ``"accepted"`` (journaled and
        started).  Raises :class:`RequestShed` when draining or over a
        watermark — never queues unboundedly.
        """
        key = content_key(recipe)
        payload = self.store.get(key)
        if payload is not None:
            with self._lock:
                self.stats.received += 1
                self.stats.store_hits += 1
            entry = InFlight(key=key, recipe=dict(recipe))
            entry.payload = payload
            entry.done.set()
            return entry, "hit"
        with self._lock:
            self.stats.received += 1
            existing = self._inflight.get(key)
            if existing is not None:
                self.stats.coalesced += 1
                return existing, "coalesced"
            reason = self._shed_reason()
            if reason is not None:
                self.stats.shed += 1
                raise RequestShed(reason, self.retry_after_s)
            # The write-ahead step: once this returns, the request
            # survives any crash — replay picks it up from here.
            self.journal.record(key, recipe)
            if faults.fault_active("serve-kill-mid-request"):
                os._exit(KILL_MID_REQUEST_EXIT)
            entry = InFlight(key=key, recipe=dict(recipe))
            self._inflight[key] = entry
            self.stats.accepted += 1
            self._start_resolver(entry)
            return entry, "accepted"

    def _shed_reason(self) -> Optional[str]:
        """Why a new request must be refused right now (None = admit).

        Called under the lock.  Draining sheds everything; otherwise
        each watermark is checked so the reason names the saturated
        resource.
        """
        if self.draining:
            return "draining"
        if len(self._inflight) >= self.max_inflight:
            return f"in-flight limit ({self.max_inflight}) reached"
        if self.journal.depth() >= self.journal_watermark:
            return f"journal depth over watermark ({self.journal_watermark})"
        status = self.queue.status()
        if status.open_tasks >= self.queue_watermark:
            return f"queue depth over watermark ({self.queue_watermark})"
        return None

    def wait(
        self, entry: InFlight, timeout_s: Optional[float]
    ) -> Optional[Dict[str, Any]]:
        """Wait for an admitted request's payload; None on deadline.

        A None return is *not* failure: the execution continues and the
        caller answers 202-style with the key for re-polling.  Raises
        :class:`RequestFailed` when the task resolved in error, and
        :class:`RequestShed` when the waiter cap is hit (a parked
        handler thread is a resource too).
        """
        if entry.done.is_set():
            return self._unwrap(entry)
        with self._lock:
            if self._waiters >= self.max_waiters:
                self.stats.shed += 1
                raise RequestShed(
                    f"waiter limit ({self.max_waiters}) reached",
                    self.retry_after_s,
                )
            self._waiters += 1
        try:
            finished = entry.done.wait(timeout_s)
        finally:
            with self._lock:
                self._waiters -= 1
        if not finished:
            return None
        return self._unwrap(entry)

    @staticmethod
    def _unwrap(entry: InFlight) -> Dict[str, Any]:
        if entry.error is not None:
            raise RequestFailed(entry.error)
        assert entry.payload is not None
        return entry.payload

    # -- introspection ---------------------------------------------------

    def lookup(
        self, key: str
    ) -> Tuple[str, Optional[Dict[str, Any]]]:
        """Poll a request by content key: ``(state, payload)``.

        States: ``"done"`` (payload attached), ``"pending"`` (in
        flight or journaled — the answer will land), ``"failed"``
        (poisoned task; the poison record rides as the payload), or
        ``"unknown"``.
        """
        payload = self.store.get(key)
        if payload is not None:
            return "done", payload
        with self._lock:
            if key in self._inflight:
                return "pending", None
        poison = self.queue.poison_record(key)
        if poison is not None:
            return "failed", poison
        if self.journal.entry(key) is not None:
            return "pending", None
        return "unknown", None

    def inflight_keys(self) -> List[str]:
        """Content keys currently executing (sorted)."""
        with self._lock:
            return sorted(self._inflight)

    def status(self) -> Dict[str, Any]:
        """The ``/status`` document: every robustness dial at once."""
        with self._lock:
            inflight = sorted(self._inflight)
            waiters = self._waiters
        return {
            "owner": self.owner,
            "draining": self.draining,
            "degraded": self.degraded,
            "inflight": inflight,
            "waiters": waiters,
            "stats": self.stats.to_json(),
            "admission": {
                "max_inflight": self.max_inflight,
                "max_waiters": self.max_waiters,
                "queue_watermark": self.queue_watermark,
                "journal_watermark": self.journal_watermark,
            },
            "journal_depth": self.journal.depth(),
            "queue": self.queue.status().to_json(),
            "store": self.store.stats(),
        }

    # -- recovery --------------------------------------------------------

    def replay_journal(self) -> int:
        """Re-execute every journaled request (call before serving).

        Entries whose result blob already landed (a crash between the
        put and the journal resolve) are resolved without re-running.
        Replayed entries bypass admission — they were accepted before
        the crash — but occupy the in-flight set, so fresh traffic
        sees them.  Returns how many entries went back in flight.
        """
        self.journal.discard_corrupt()
        replayed = 0
        for journal_entry in self.journal.entries():
            payload = self.store.get(journal_entry.key)
            if payload is not None:
                self.journal.resolve(journal_entry.key)
                continue
            with self._lock:
                if journal_entry.key in self._inflight:
                    continue
                entry = InFlight(
                    key=journal_entry.key,
                    recipe=journal_entry.recipe,
                    replayed=True,
                )
                self._inflight[journal_entry.key] = entry
                self.stats.replayed += 1
                self._start_resolver(entry)
            replayed += 1
        return replayed

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admitting; wait for in-flight work.  True when empty.

        New submissions shed immediately.  Every in-flight request
        either resolves within the timeout or stays journaled — an
        accepted request is never silently dropped, so a False return
        still leaves nothing unrecoverable behind.
        """
        with self._lock:
            self.draining = True
            entries = list(self._inflight.values())
        deadline = (
            None if timeout_s is None
            else time.monotonic() + timeout_s
        )
        for entry in entries:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            entry.done.wait(remaining)
        with self._lock:
            return not self._inflight

    # -- execution -------------------------------------------------------

    def _start_resolver(self, entry: InFlight) -> None:
        thread = threading.Thread(
            target=self._resolve, args=(entry,), daemon=True,
            name=f"resolve-{entry.key}",
        )
        self._threads.append(thread)
        thread.start()

    def _resolve(self, entry: InFlight) -> None:
        """Drive one request to a terminal state (resolver thread)."""
        try:
            entry.payload = self._execute(entry)
            # The result blob is durable; only now may the journal
            # entry die — the crash-recovery invariant.
            self.journal.resolve(entry.key)
            with self._lock:
                self.stats.completed += 1
        except Exception:
            entry.error = traceback.format_exc()
            # Terminal failure: the poison record (surfaced via
            # lookup()) outlives the journal entry, which would
            # otherwise replay a poisoned task forever.
            self.journal.resolve(entry.key)
            with self._lock:
                self.stats.failed += 1
        finally:
            with self._lock:
                self._inflight.pop(entry.key, None)
            entry.done.set()

    def _execute(self, entry: InFlight) -> Dict[str, Any]:
        """Submit to the queue and supervise until the result lands.

        The sweep coordinator's discipline, scoped to one task: poll
        the done record, reclaim expired leases, and — when the task
        shows no progress for ``serial_grace_s`` — turn sticky-degraded
        and execute claims in-process through the identical
        claim → execute → complete path.
        """
        queue = self.queue
        queue.submit(entry.recipe)
        last_progress = time.monotonic()
        last_signature = self._progress_signature(entry.key)
        while True:
            record = queue.done_record(entry.key)
            if record is not None:
                key = record.get("result_key", entry.key)
                payload = self.store.get(key)
                if payload is None:
                    # Done record without a blob (operator deleted the
                    # store?): recompute in-process, same discipline as
                    # the coordinator's collector.
                    payload = self._recompute(entry)
                return payload
            poison = queue.poison_record(entry.key)
            if poison is not None:
                raise RequestFailed(
                    f"task {entry.key} poisoned after "
                    f"{poison.get('attempts', '?')} attempt(s):\n"
                    f"{poison.get('error', '?')}"
                )
            queue.reclaim_expired()
            signature = self._progress_signature(entry.key)
            if signature != last_signature:
                last_signature = signature
                last_progress = time.monotonic()
            if self.degraded or (
                time.monotonic() - last_progress > self.serial_grace_s
            ):
                # Sticky, engine-wide: once no worker showed progress
                # for one request, stop waiting for any of them.
                self.degraded = True
                claimed = queue.claim(self.owner, want={entry.key})
                if claimed is not None:
                    try:
                        with_lock_retry(lambda: execute_claimed_task(
                            queue, self.store, claimed,
                            checkpoint_stride=self.checkpoint_stride,
                        ))
                    except Exception:
                        queue.fail(
                            entry.key, self.owner,
                            traceback.format_exc(),
                        )
                    continue
            time.sleep(self.poll_s)

    def _progress_signature(self, key: str) -> Optional[Tuple]:
        """What this task's claim looks like right now.

        Any change — a claim appearing, a heartbeat landing, a retry
        bumping attempts — counts as external progress and re-arms the
        degrade grace period.  None when unclaimed.
        """
        lease = _read_json(self.queue._path("claimed", key))
        if lease is None:
            return None
        return (
            lease.get("owner"),
            lease.get("attempts"),
            lease.get("heartbeats"),
        )

    def _recompute(self, entry: InFlight) -> Dict[str, Any]:
        """In-process fallback for a done task whose blob went missing."""
        result = build_simulator(entry.recipe).run()
        payload = result.to_json()
        with_lock_retry(lambda: self.store.put(
            entry.recipe, payload,
            name=result_alias(entry.key), kind=TASK_KIND,
            meta={"owner": self.owner},
        ))
        return payload
