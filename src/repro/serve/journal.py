"""Write-ahead request journal: the serve daemon's crash-safety spine.

Every request the daemon *accepts* is journaled before any work
happens, with the same atomic-rename discipline the queue uses for
state transitions: one ``journal/<key>.json`` file per accepted
request, where ``<key>`` is the request recipe's content key (which is
also the task id and the result blob's address).  The entry is removed
only after the result blob is durably in the store — so at every
instant, an accepted request is either answerable from the store or
present in the journal:

* **Crash before the journal write** — the request was never accepted;
  the client saw no response and resubmits (idempotent: content keys).
* **Crash between journal write and result put** — the entry survives;
  the restarted daemon replays it through the normal execution path
  and clients re-poll ``/result/<key>``.
* **Crash between result put and the journal resolve** — replay finds
  the blob already in the store and resolves the entry without
  re-executing.

A torn entry (the daemon died *inside* the journal write) is
unreadable by construction only as a ``*.tmp`` sibling — the rename
is atomic — but a corrupt entry from outside interference reads as
unreplayable and is discarded: the request it described was never
answered, and the client's retry resubmits it under the same key.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

JOURNAL_VERSION = 1

_TMP_COUNTER = itertools.count()


@dataclass(frozen=True)
class JournalEntry:
    """One accepted-but-unanswered request: its key and full recipe."""

    key: str
    recipe: Dict[str, Any]
    journaled_at: float


class RequestJournal:
    """Directory of atomic-rename request entries keyed by content key."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def record(self, key: str, recipe: Mapping[str, Any]) -> bool:
        """Journal an accepted request; False if already journaled.

        Idempotent by key: a coalesced duplicate or a replayed
        resubmission finds the existing entry and writes nothing — one
        accepted request is one journal entry, ever.
        """
        path = self._path(key)
        if path.is_file():
            return False
        payload = {
            "version": JOURNAL_VERSION,
            "key": key,
            "recipe": dict(recipe),
            "journaled_at": time.time(),
        }
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        )
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        os.replace(tmp, path)
        return True

    def resolve(self, key: str) -> bool:
        """Retire an entry once its result is durably in the store."""
        try:
            self._path(key).unlink()
        except OSError:
            return False
        return True

    def entry(self, key: str) -> Optional[JournalEntry]:
        """The entry for ``key`` (None if absent or unreadable)."""
        data = self._read(self._path(key))
        if data is None:
            return None
        return JournalEntry(
            key=key,
            recipe=data["recipe"],
            journaled_at=float(data.get("journaled_at", 0.0)),
        )

    def entries(self) -> List[JournalEntry]:
        """Every replayable entry, sorted by key for determinism."""
        out: List[JournalEntry] = []
        for path in sorted(self.root.glob("*.json")):
            data = self._read(path)
            if data is None:
                continue
            out.append(JournalEntry(
                key=path.stem,
                recipe=data["recipe"],
                journaled_at=float(data.get("journaled_at", 0.0)),
            ))
        return out

    def discard_corrupt(self) -> List[str]:
        """Drop unreplayable entries (corrupt JSON, missing recipe).

        A corrupt entry describes a request that was never answered —
        the client's deadline/retry loop resubmits it under the same
        content key, so discarding loses nothing durable.  Returns the
        dropped keys.
        """
        dropped: List[str] = []
        for path in sorted(self.root.glob("*.json")):
            if self._read(path) is not None:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            dropped.append(path.stem)
        return dropped

    def depth(self) -> int:
        """How many accepted requests are journaled right now."""
        return sum(1 for _ in self.root.glob("*.json"))

    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("version") != JOURNAL_VERSION
            or not isinstance(data.get("recipe"), dict)
        ):
            return None
        return data
