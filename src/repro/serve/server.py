"""The ``repro serve`` daemon: a thin HTTP skin over the request engine.

Stdlib only (``http.server.ThreadingHTTPServer``); every robustness
property lives in :class:`~repro.serve.engine.RequestEngine`, which
this module merely translates to status codes:

====================  =====================================================
``POST /request``     admit a scenario-recipe request; 200 with the result
                      payload (store hit, coalesced, or computed), 202
                      with the content key when the caller's ``wait_s``
                      expired while the work continues, 429 + Retry-After
                      when admission control sheds, 503 + Retry-After when
                      draining, 500 when the task poisoned.
``GET /result/<key>`` re-poll by content key: 200 done / 202 pending /
                      500 failed (poison record attached) / 404 unknown.
``GET /healthz``      liveness: 200 ``{"ok": true, "draining": ...}``.
``GET /status``       the full census: in-flight set, shed counters,
                      journal depth, queue census, store stats.
====================  =====================================================

Lifecycle: :meth:`ServeDaemon.start` replays the journal *before* the
socket accepts traffic (crash recovery is not optional work that
happens if there's spare time), writes an endpoint file so clients and
harnesses can discover the bound port, and :meth:`ServeDaemon.run`
serves until SIGTERM/SIGINT — which triggers the graceful drain: stop
accepting, finish or journal in-flight work, exit 0.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..distrib.queue import FileWorkQueue
from ..distrib.worker import DEFAULT_CHECKPOINT_STRIDE, sweep_task_recipe
from ..results.store import store_for
from .engine import RequestEngine, RequestFailed, RequestShed
from .journal import RequestJournal

SERVE_VERSION = 1

#: Default and ceiling for how long one HTTP request blocks waiting.
DEFAULT_WAIT_S = 30.0
MAX_WAIT_S = 300.0


def serve_dir(results_dir: Path) -> Path:
    """The daemon's state directory under a results dir."""
    return Path(results_dir) / "serve"


def endpoint_path(results_dir: Path) -> Path:
    """Where a running daemon advertises its bound address."""
    return serve_dir(results_dir) / "endpoint.json"


def read_endpoint(results_dir: Path) -> Optional[Dict[str, Any]]:
    """The advertised endpoint (None when no daemon has written one)."""
    try:
        data = json.loads(endpoint_path(results_dir).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


class ServeDaemon:
    """One ``repro serve`` instance: store + queue + journal + HTTP."""

    def __init__(
        self,
        results_dir: Path,
        queue_dir: Optional[Path] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_s: float = 30.0,
        max_inflight: int = 8,
        max_waiters: int = 64,
        queue_watermark: int = 256,
        journal_watermark: int = 64,
        serial_grace_s: float = 2.0,
        checkpoint_stride: Optional[int] = DEFAULT_CHECKPOINT_STRIDE,
        log=None,
    ) -> None:
        self.results_dir = Path(results_dir)
        self.host = host
        self.requested_port = port
        self.log = log or (lambda message: None)
        store = store_for(self.results_dir)
        queue = FileWorkQueue(
            Path(queue_dir)
            if queue_dir is not None
            else self.results_dir / "queue",
            lease_s=lease_s,
        )
        journal = RequestJournal(serve_dir(self.results_dir) / "journal")
        self.engine = RequestEngine(
            store, queue, journal,
            max_inflight=max_inflight,
            max_waiters=max_waiters,
            queue_watermark=queue_watermark,
            journal_watermark=journal_watermark,
            serial_grace_s=serial_grace_s,
            checkpoint_stride=checkpoint_stride,
        )
        self.httpd: Optional[ThreadingHTTPServer] = None
        self._shutdown_lock = threading.Lock()
        self._shutdown_started = False
        self._shutdown_done = threading.Event()
        self._drained = False

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (only valid after :meth:`start`)."""
        assert self.httpd is not None, "daemon not started"
        return self.httpd.server_address[0], self.httpd.server_address[1]

    def start(self) -> int:
        """Replay the journal, bind the socket, advertise the endpoint.

        Returns how many journaled requests went back in flight.
        Replay happens *before* the socket exists: a recovering daemon
        is already working on its backlog when the first client
        reconnects, and ``/result/<key>`` answers for every key the
        pre-crash daemon accepted.
        """
        replayed = self.engine.replay_journal()
        handler = type(
            "_BoundHandler", (_RequestHandler,), {"daemon": self}
        )
        self.httpd = ThreadingHTTPServer(
            (self.host, self.requested_port), handler
        )
        self.httpd.daemon_threads = True
        self._write_endpoint()
        if replayed:
            self.log(f"replayed {replayed} journaled request(s)")
        return replayed

    def _write_endpoint(self) -> None:
        import os

        path = endpoint_path(self.results_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps({
            "version": SERVE_VERSION,
            "host": self.address[0],
            "port": self.address[1],
            "pid": os.getpid(),
            "started_at": time.time(),
        }, indent=2) + "\n")
        os.replace(tmp, path)

    def serve_in_thread(self) -> threading.Thread:
        """Serve from a background thread (the in-process test mode)."""
        assert self.httpd is not None, "call start() first"
        thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        return thread

    def run(
        self,
        install_signals: bool = True,
        drain_timeout_s: Optional[float] = None,
    ) -> bool:
        """Serve until SIGTERM/SIGINT, then drain; True when empty.

        The graceful-drain contract: on the first signal the daemon
        stops accepting (new submissions shed with 503), waits for the
        in-flight set to empty (bounded by ``drain_timeout_s``), and
        returns.  Anything still unfinished stays journaled, so a
        False return leaves nothing unrecoverable.
        """
        assert self.httpd is not None, "call start() first"

        def _stop(signum=None, frame=None):
            threading.Thread(
                target=self.shutdown, args=(drain_timeout_s,),
                daemon=True,
            ).start()

        if install_signals:
            signal.signal(signal.SIGTERM, _stop)
            signal.signal(signal.SIGINT, _stop)
        self.httpd.serve_forever(poll_interval=0.05)
        return self.shutdown(drain_timeout_s)

    def shutdown(self, drain_timeout_s: Optional[float] = None) -> bool:
        """Stop accepting, drain in-flight work, retire the endpoint.

        Idempotent and thread-safe: the first caller performs the
        drain, later callers (including :meth:`run`'s tail) wait for
        it and share the verdict.
        """
        with self._shutdown_lock:
            already = self._shutdown_started
            self._shutdown_started = True
        if already:
            self._shutdown_done.wait()
            return self._drained
        self.engine.draining = True
        assert self.httpd is not None
        self.httpd.shutdown()
        self._drained = self.engine.drain(drain_timeout_s)
        try:
            endpoint_path(self.results_dir).unlink()
        except OSError:
            pass
        self.httpd.server_close()
        self._shutdown_done.set()
        self.log(
            "drained clean" if self._drained
            else "drain timeout: unfinished requests remain journaled"
        )
        return self._drained


def recipe_from_request(body: Dict[str, Any]) -> Dict[str, Any]:
    """Build the task recipe one ``POST /request`` body describes.

    Two forms: ``{"recipe": {...}}`` carries an explicit sweep-task
    recipe (the idempotent resubmission path — the client round-trips
    exactly what it first sent), and ``{"scenario": "<preset>",
    "n_requests": N, "seed": S}`` names a registered preset.  Raises
    ``ValueError`` on anything else.
    """
    if "recipe" in body:
        recipe = body["recipe"]
        if not isinstance(recipe, dict):
            raise ValueError("'recipe' must be a JSON object")
        return recipe
    if "scenario" in body:
        from ..scenarios import get_scenario

        try:
            spec = get_scenario(str(body["scenario"]))
        except KeyError as exc:
            raise ValueError(exc.args[0]) from None
        return sweep_task_recipe(
            spec.recipe(),
            int(body.get("n_requests", 400)),
            int(body.get("seed", 0)),
        )
    raise ValueError("request body needs 'recipe' or 'scenario'")


class _RequestHandler(BaseHTTPRequestHandler):
    """Route HTTP verbs onto the engine; all bodies are JSON."""

    daemon: ServeDaemon  # bound per-daemon by ServeDaemon.start()
    server_version = "repro-serve/1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        self.daemon.log(f"{self.address_string()} {format % args}")

    def _send_json(
        self, code: int, payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client gave up; the work (if any) continues

    def _send_shed(self, shed: RequestShed) -> None:
        code = 503 if shed.reason == "draining" else 429
        self._send_json(
            code,
            {
                "status": "shed",
                "reason": shed.reason,
                "retry_after_s": shed.retry_after_s,
            },
            headers={"Retry-After": f"{shed.retry_after_s:.0f}"},
        )

    # -- verbs -----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        """``POST /request``: admit, wait (bounded), answer."""
        if self.path != "/request":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
            recipe = recipe_from_request(body)
            wait_s = min(
                max(0.0, float(body.get("wait_s", DEFAULT_WAIT_S))),
                MAX_WAIT_S,
            )
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        engine = self.daemon.engine
        try:
            entry, disposition = engine.submit(recipe)
        except RequestShed as shed:
            self._send_shed(shed)
            return
        try:
            payload = engine.wait(entry, wait_s)
        except RequestShed as shed:
            self._send_shed(shed)
            return
        except RequestFailed as exc:
            self._send_json(500, {
                "status": "failed", "key": entry.key,
                "error": str(exc),
            })
            return
        if payload is None:
            self._send_json(202, {
                "status": "pending", "key": entry.key,
                "source": disposition,
            })
            return
        self._send_json(200, {
            "status": "done", "key": entry.key,
            "source": disposition, "payload": payload,
        })

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        """``/healthz``, ``/status``, ``/result/<key>``."""
        engine = self.daemon.engine
        if self.path == "/healthz":
            self._send_json(200, {
                "ok": True, "draining": engine.draining,
            })
            return
        if self.path == "/status":
            self._send_json(200, engine.status())
            return
        if self.path.startswith("/result/"):
            key = self.path[len("/result/"):]
            state, payload = engine.lookup(key)
            if state == "done":
                self._send_json(200, {
                    "status": "done", "key": key, "payload": payload,
                })
            elif state == "pending":
                self._send_json(202, {"status": "pending", "key": key})
            elif state == "failed":
                self._send_json(500, {
                    "status": "failed", "key": key, "poison": payload,
                })
            else:
                self._send_json(404, {"status": "unknown", "key": key})
            return
        self._send_json(404, {"error": f"unknown path {self.path}"})
