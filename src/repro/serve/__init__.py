"""Long-lived request serving over the queue + store stack.

``repro serve`` turns the batch machinery (:mod:`repro.distrib`,
:mod:`repro.results`) into a daemon: clients POST scenario-recipe
requests, the daemon dedupes them by store content key, and anything
not already computed flows through the same work queue a sweep uses —
external workers if any are alive, the daemon's own sticky-degraded
execution if not.

The package splits along testability lines:

* :mod:`~repro.serve.journal` — the write-ahead request journal
  (crash recovery's source of truth).
* :mod:`~repro.serve.engine` — admission control, coalescing,
  degraded execution, replay; no sockets anywhere.
* :mod:`~repro.serve.server` — the stdlib HTTP skin and the
  SIGTERM graceful-drain lifecycle.
* :mod:`~repro.serve.client` — the deadline/retry/backoff contract
  (``repro request``).
* :mod:`~repro.serve.chaos` — kill/restart/byte-compare harness.
"""

from .client import (
    DeadlineExceeded,
    RequestOutcome,
    ServeClient,
    ServeError,
    ServeUnavailable,
)
from .engine import (
    KILL_MID_REQUEST_EXIT,
    RequestEngine,
    RequestFailed,
    RequestShed,
    ServeStats,
)
from .journal import JournalEntry, RequestJournal
from .server import ServeDaemon, endpoint_path, read_endpoint, serve_dir

__all__ = [
    "DeadlineExceeded",
    "JournalEntry",
    "KILL_MID_REQUEST_EXIT",
    "RequestEngine",
    "RequestFailed",
    "RequestJournal",
    "RequestOutcome",
    "RequestShed",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeStats",
    "ServeUnavailable",
    "endpoint_path",
    "read_endpoint",
    "serve_dir",
]
