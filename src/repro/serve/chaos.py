"""Chaos harness for the serve daemon: kill it, restart it, compare.

Same oracle as the worker chaos harness (:mod:`repro.distrib.chaos`):
a serial run is the reference, and after the daemon has been killed
and recovered, every requested result blob must be *byte-identical*
to the serial one.  Two faults cover the journal's two halves:

``serve-kill-mid-request`` (in-process, deterministic)
    The daemon ``os._exit(45)``\\ s immediately after writing the
    first request's journal entry — before any queue submit, any
    execution, any result put.  The client sees a dead socket; the
    journal is the *only* trace the request ever existed.  A
    restarted daemon must replay it to completion.

``sigkill-after-accept`` (external)
    Every request is submitted with ``wait_s=0`` (202-accepted, work
    in flight), then the harness SIGKILLs the daemon — no drain, no
    cleanup.  Replay must finish whatever the first life didn't.

Both cases end with a SIGTERM graceful drain: the recovered daemon
must exit 0 with an empty journal, proving that crash recovery leaves
no permanent residue.
"""

from __future__ import annotations

import http.client
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from ..distrib.chaos import _repo_pythonpath, compare_blobs
from ..distrib.coordinator import run_serial_sweep
from ..results.store import ResultStore, content_key, store_for
from .client import ServeClient
from .engine import KILL_MID_REQUEST_EXIT
from .journal import RequestJournal
from .server import read_endpoint, serve_dir

#: Faults this harness injects from outside the daemon process.
SERVE_EXTERNAL_FAULTS = {
    "sigkill-after-accept":
        "SIGKILL the daemon after every request is journaled and "
        "202-accepted, before the work completes",
}


def serve_command(
    results_dir: Path,
    port: int = 0,
    lease_s: float = 1.5,
    serial_grace_s: float = 0.5,
    checkpoint_stride: int = 20_000,
    fault: Optional[str] = None,
) -> List[str]:
    """The ``repro serve`` argv for one daemon subprocess."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--results-dir", str(results_dir),
        "--port", str(port),
        "--lease", str(lease_s),
        "--serial-grace", str(serial_grace_s),
        "--checkpoint-stride", str(checkpoint_stride),
    ]
    if fault is not None:
        cmd += ["--fault", fault]
    return cmd


def spawn_daemon(
    results_dir: Path,
    port: int = 0,
    lease_s: float = 1.5,
    serial_grace_s: float = 0.5,
    checkpoint_stride: int = 20_000,
    fault: Optional[str] = None,
    log_path: Optional[Path] = None,
) -> subprocess.Popen:
    """Start one real ``repro serve`` subprocess (logs to a file)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _repo_pythonpath()
    log = open(log_path, "w") if log_path is not None else subprocess.DEVNULL
    return subprocess.Popen(
        serve_command(
            results_dir, port=port, lease_s=lease_s,
            serial_grace_s=serial_grace_s,
            checkpoint_stride=checkpoint_stride, fault=fault,
        ),
        stdout=log, stderr=subprocess.STDOUT, env=env,
    )


def wait_for_endpoint(
    results_dir: Path,
    pid: int,
    timeout_s: float = 30.0,
    poll_s: float = 0.05,
) -> Dict[str, Any]:
    """Block until *this* daemon (by pid) advertises its endpoint.

    Matching on pid matters after a restart: the killed daemon's stale
    endpoint file is still on disk, and connecting to its dead port
    would make the harness flake.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        endpoint = read_endpoint(results_dir)
        if endpoint is not None and endpoint.get("pid") == pid:
            return endpoint
        time.sleep(poll_s)
    raise TimeoutError(
        f"daemon pid {pid} never advertised an endpoint under "
        f"{results_dir} within {timeout_s:.1f}s"
    )


def poll_until_done(
    client: ServeClient,
    key: str,
    timeout_s: float,
    poll_s: float = 0.1,
) -> Dict[str, Any]:
    """Re-poll ``/result/<key>`` until 200; tolerate transient errors."""
    deadline = time.monotonic() + timeout_s
    last: Any = None
    while time.monotonic() < deadline:
        try:
            code, data = client.result(key)
        except (OSError, http.client.HTTPException) as exc:
            last = exc
            time.sleep(poll_s)
            continue
        if code == 200:
            return data
        if code == 500:
            raise AssertionError(f"key {key} poisoned: {data}")
        last = (code, data)
        time.sleep(poll_s)
    raise TimeoutError(
        f"key {key} not done within {timeout_s:.1f}s (last: {last})"
    )


@dataclass
class ServeChaosReport:
    """One serve chaos case's verdict and forensics."""

    fault: str
    keys: List[str]
    first_exit: Optional[int]
    drain_exit: Optional[int]
    journal_depth_after_kill: int
    journal_depth_after_drain: int
    blobs_present_after_kill: int
    mismatched_keys: List[str]
    fault_fired: bool = True
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Fault fired, recovery completed, drain clean, bytes equal."""
        return (
            self.fault_fired
            and not self.mismatched_keys
            and self.drain_exit == 0
            and self.journal_depth_after_drain == 0
        )

    def summary_lines(self) -> List[str]:
        lines = [
            f"serve-chaos[{self.fault}]: "
            f"{'OK' if self.ok else 'FAIL'} — "
            f"{len(self.keys)} key(s), first exit {self.first_exit}, "
            f"drain exit {self.drain_exit}, journal "
            f"{self.journal_depth_after_kill} after kill / "
            f"{self.journal_depth_after_drain} after drain"
        ]
        for key in self.mismatched_keys:
            lines.append(f"  blob {key} differs from the serial run")
        lines.extend(f"  {note}" for note in self.notes)
        return lines


def run_serve_chaos_case(
    base_dir: Path,
    recipes: Sequence[Dict[str, Any]],
    fault: str = "serve-kill-mid-request",
    timeout_s: float = 120.0,
    serial_grace_s: float = 0.5,
    checkpoint_stride: int = 20_000,
    serial_store: Optional[ResultStore] = None,
) -> ServeChaosReport:
    """Run one full serve chaos experiment under ``base_dir``.

    Serial reference in ``<base>/serial`` (or a caller-provided
    ``serial_store``), the daemon's world (store + queue + journal +
    logs) in ``<base>/daemon``.  No workers are spawned: the daemon's
    own sticky-degraded execution does the computing, which keeps the
    case about the *journal*, not the fleet.
    """
    base_dir = Path(base_dir)
    keys = [content_key(recipe) for recipe in recipes]
    if serial_store is None:
        serial_store = store_for(base_dir / "serial")
        run_serial_sweep(recipes, serial_store)

    daemon_dir = base_dir / "daemon"
    daemon_dir.mkdir(parents=True, exist_ok=True)
    journal = RequestJournal(serve_dir(daemon_dir) / "journal")
    notes: List[str] = []
    internal = fault not in SERVE_EXTERNAL_FAULTS

    first = spawn_daemon(
        daemon_dir,
        serial_grace_s=serial_grace_s,
        checkpoint_stride=checkpoint_stride,
        fault=fault if internal else None,
        log_path=daemon_dir / "daemon-1.log",
    )
    fault_fired = False
    first_exit: Optional[int] = None
    try:
        endpoint = wait_for_endpoint(daemon_dir, first.pid, timeout_s)
        client = ServeClient(endpoint["host"], endpoint["port"],
                             timeout_s=10.0)
        if internal:
            # The first POST dies mid-handshake: journal written, then
            # os._exit(45).  The client sees a dead socket.
            try:
                client.call(
                    "POST", "/request",
                    {"recipe": recipes[0], "wait_s": 5.0},
                )
                notes.append("first POST answered — fault did not fire?")
            except (OSError, http.client.HTTPException):
                pass
            first_exit = first.wait(timeout=30.0)
            fault_fired = first_exit == KILL_MID_REQUEST_EXIT
            notes.append(
                f"daemon died with exit {first_exit} "
                f"(expected {KILL_MID_REQUEST_EXIT})"
            )
        else:
            # Accept everything (wait_s=0 → 202), then SIGKILL.
            for recipe in recipes:
                code, data = client.call(
                    "POST", "/request", {"recipe": recipe, "wait_s": 0},
                )
                if code not in (200, 202):
                    notes.append(f"unexpected accept status {code}: {data}")
            first.send_signal(signal.SIGKILL)
            first_exit = first.wait(timeout=30.0)
            fault_fired = True
            notes.append(f"SIGKILLed after accept (exit {first_exit})")
    finally:
        if first.poll() is None:
            first.kill()
            first.wait(timeout=30.0)

    depth_after_kill = journal.depth()
    store = store_for(daemon_dir)
    blobs_after_kill = sum(
        1 for key in keys if store.get(key) is not None
    )

    # -- restart clean, let replay + fresh submissions finish ----------
    second = spawn_daemon(
        daemon_dir,
        serial_grace_s=serial_grace_s,
        checkpoint_stride=checkpoint_stride,
        log_path=daemon_dir / "daemon-2.log",
    )
    drain_exit: Optional[int] = None
    try:
        endpoint = wait_for_endpoint(daemon_dir, second.pid, timeout_s)
        client = ServeClient(endpoint["host"], endpoint["port"],
                             timeout_s=10.0)
        if internal:
            # Only the first recipe was ever journaled; submit the
            # rest as fresh requests against the recovered daemon.
            for recipe in recipes[1:]:
                client.call(
                    "POST", "/request", {"recipe": recipe, "wait_s": 0},
                )
        for key in keys:
            poll_until_done(client, key, timeout_s)
        second.send_signal(signal.SIGTERM)
        drain_exit = second.wait(timeout=60.0)
    finally:
        if second.poll() is None:
            second.kill()
            second.wait(timeout=30.0)

    return ServeChaosReport(
        fault=fault,
        keys=keys,
        first_exit=first_exit,
        drain_exit=drain_exit,
        journal_depth_after_kill=depth_after_kill,
        journal_depth_after_drain=journal.depth(),
        blobs_present_after_kill=blobs_after_kill,
        mismatched_keys=compare_blobs(serial_store, store, keys),
        fault_fired=fault_fired,
        notes=notes,
    )
