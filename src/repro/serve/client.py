"""Client for the ``repro serve`` daemon (used by ``repro request``).

The retry contract lives here, not in the server.  Because a request's
identity is its content key, *resubmission is idempotent*: a client
that times out, hits a shed, or loses the TCP connection simply sends
the same body again, and the daemon coalesces it onto the in-flight
entry or answers from the store.  That turns every failure mode into
the same loop:

* connection refused / reset → jittered exponential backoff, resubmit;
* 429 / 503 shed → sleep the server's ``Retry-After`` (jittered), resubmit;
* 202 pending → remember the key, poll ``GET /result/<key>``;
* 404 on a poll (daemon restarted before journaling us) → resubmit;
* 200 → done; 500 → the task poisoned, raise with the server's detail.

One knob bounds the whole thing: ``deadline_s`` is the caller's total
budget.  When it expires the client raises :class:`DeadlineExceeded`
carrying the content key (when one was assigned), so the caller can
re-poll later — the daemon keeps working; a deadline bounds the *wait*,
never the work.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

#: Backoff schedule for connection errors and unannotated retries.
BACKOFF_BASE_S = 0.1
BACKOFF_MAX_S = 2.0

#: How often a client re-polls ``/result/<key>`` after a 202.
DEFAULT_POLL_S = 0.2

DEFAULT_DEADLINE_S = 120.0
DEFAULT_WAIT_S = 10.0


class ServeError(RuntimeError):
    """The daemon answered with something unrecoverable (400/500)."""


class ServeUnavailable(ServeError):
    """No daemon reachable (no endpoint file, or nothing listening)."""


class DeadlineExceeded(ServeError):
    """``deadline_s`` ran out.  Carries the key for later re-polling."""

    def __init__(self, message: str, key: Optional[str] = None) -> None:
        super().__init__(message)
        self.key = key


@dataclass
class RequestOutcome:
    """A completed request plus the effort it took."""

    key: str
    payload: str
    source: str          # "hit" | "coalesced" | "accepted" | "poll"
    submits: int = 0     # POST /request round trips
    polls: int = 0       # GET /result round trips
    retries: int = 0     # backoff sleeps (sheds + connection errors)
    elapsed_s: float = 0.0


class ServeClient:
    """One daemon endpoint plus the deadline/retry policy."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout_s: float = 10.0,
        poll_s: float = DEFAULT_POLL_S,
        rng: Optional[random.Random] = None,
        sleep=time.sleep,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    @classmethod
    def from_results_dir(
        cls, results_dir: Path, **kwargs: Any
    ) -> "ServeClient":
        """Discover the daemon via its advertised endpoint file."""
        from .server import endpoint_path, read_endpoint

        endpoint = read_endpoint(Path(results_dir))
        if endpoint is None:
            raise ServeUnavailable(
                f"no serve endpoint at {endpoint_path(Path(results_dir))} "
                "(is 'repro serve' running?)"
            )
        return cls(endpoint["host"], endpoint["port"], **kwargs)

    # -- raw HTTP --------------------------------------------------------

    def call(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; raises ``OSError`` on transport failure."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {"error": raw.decode(errors="replace")}
            return response.status, data
        finally:
            conn.close()

    def healthz(self) -> Dict[str, Any]:
        code, data = self.call("GET", "/healthz")
        if code != 200:
            raise ServeError(f"/healthz returned {code}: {data}")
        return data

    def status(self) -> Dict[str, Any]:
        code, data = self.call("GET", "/status")
        if code != 200:
            raise ServeError(f"/status returned {code}: {data}")
        return data

    def result(self, key: str) -> Tuple[int, Dict[str, Any]]:
        """Poll one content key (200/202/404/500 pass through)."""
        return self.call("GET", f"/result/{key}")

    # -- the retry loop --------------------------------------------------

    def _backoff(self, attempt: int, hint: Optional[float] = None) -> float:
        base = hint if hint is not None else min(
            BACKOFF_BASE_S * (2 ** attempt), BACKOFF_MAX_S
        )
        return base * (0.5 + self._rng.random())

    def request(
        self,
        body: Dict[str, Any],
        deadline_s: float = DEFAULT_DEADLINE_S,
        wait_s: float = DEFAULT_WAIT_S,
    ) -> RequestOutcome:
        """Drive ``body`` to completion within ``deadline_s``.

        ``body`` is a ``POST /request`` payload — ``{"recipe": {...}}``
        or ``{"scenario": name, "n_requests": N, "seed": S}``.  The
        per-round-trip ``wait_s`` is forwarded to the server (and
        clipped to the remaining deadline) so one slow call can never
        eat the whole budget.
        """
        started = time.monotonic()
        outcome = RequestOutcome(key="", payload="", source="")
        key: Optional[str] = None
        errors = 0

        def remaining() -> float:
            return deadline_s - (time.monotonic() - started)

        while True:
            budget = remaining()
            if budget <= 0:
                raise DeadlineExceeded(
                    f"request deadline ({deadline_s:.1f}s) exceeded"
                    + (f"; re-poll key {key}" if key else ""),
                    key=key,
                )
            try:
                if key is None:
                    code, data = self.call(
                        "POST", "/request",
                        {**body, "wait_s": min(wait_s, budget)},
                    )
                    outcome.submits += 1
                else:
                    code, data = self.result(key)
                    outcome.polls += 1
            except OSError:
                errors += 1
                outcome.retries += 1
                self._sleep(min(self._backoff(errors), max(0.0, remaining())))
                continue
            errors = 0
            if code == 200:
                outcome.key = data.get("key", key or "")
                outcome.payload = data["payload"]
                outcome.source = data.get("source", "poll")
                outcome.elapsed_s = time.monotonic() - started
                return outcome
            if code == 202:
                if key is None:
                    key = data.get("key")
                    outcome.source = data.get("source", "accepted")
                self._sleep(
                    min(self._backoff(0, hint=self.poll_s),
                        max(0.0, remaining()))
                )
                continue
            if code in (429, 503):
                outcome.retries += 1
                hint = float(data.get("retry_after_s", 0) or 0) or None
                self._sleep(
                    min(self._backoff(outcome.retries, hint=hint),
                        max(0.0, remaining()))
                )
                continue
            if code == 404 and key is not None:
                # The daemon restarted and never journaled us (the
                # crash landed before our journal write).  Content
                # addressing makes resubmission safe.
                key = None
                continue
            raise ServeError(
                f"serve request failed ({code}): "
                f"{data.get('error') or data}"
            )
